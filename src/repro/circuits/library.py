"""Benchmark circuit library.

Provides the paper's circuit under test -- a normalized biquad
negative-feedback low-pass filter with seven faultable passive components
(Tow-Thomas topology, per the FFM benchmark of Calvano et al.) -- plus the
standard active-filter benchmarks used by the cross-circuit experiments
(Sallen-Key, KHN state-variable, MFB band-pass, twin-T notch) and passive
ladders for simulator scaling studies.

Every factory returns a :class:`CircuitInfo`: the circuit itself plus the
metadata the diagnosis pipeline needs (stimulus source, observed output
node, which components are fault targets, and a sensible frequency band).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from ..errors import CircuitError
from ..units import TWO_PI
from .netlist import Circuit

__all__ = [
    "CircuitInfo",
    "tow_thomas_biquad",
    "sallen_key_lowpass",
    "khn_state_variable",
    "mfb_bandpass",
    "twin_t_notch",
    "lc_ladder_lowpass5",
    "rc_ladder",
    "rc_lowpass",
    "voltage_divider",
    "BENCHMARK_CIRCUITS",
    "get_benchmark",
]


@dataclass(frozen=True)
class CircuitInfo:
    """A benchmark circuit plus the metadata the test pipeline consumes."""

    circuit: Circuit
    input_source: str
    output_node: str
    faultable: Tuple[str, ...]
    f0_hz: float
    f_min_hz: float
    f_max_hz: float
    description: str = ""
    extra_outputs: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.input_source not in self.circuit:
            raise CircuitError(
                f"{self.circuit.name}: input source {self.input_source!r} "
                "not in circuit")
        nodes = set(self.circuit.nodes)
        if self.output_node not in nodes:
            raise CircuitError(
                f"{self.circuit.name}: output node {self.output_node!r} "
                "not in circuit")
        for name in self.faultable:
            if name not in self.circuit:
                raise CircuitError(
                    f"{self.circuit.name}: faultable component {name!r} "
                    "not in circuit")


def tow_thomas_biquad(f0_hz: float = 1e3, q: float = 1.0,
                      gain: float = 1.0, r_base: float = 1e4,
                      normalized: bool = False,
                      ideal_opamps: bool = True) -> CircuitInfo:
    """The paper's CUT: normalized biquad negative-feedback low-pass filter.

    Three-op-amp Tow-Thomas topology. The low-pass transfer function with
    ideal op-amps is::

        H(s) = (1 / (R1 R4 C1 C2)) / (s^2 + s/(R2 C1) + 1/(R3 R4 C1 C2))

    giving ``w0 = 1/sqrt(R3 R4 C1 C2)``, ``Q = w0 R2 C1`` and DC gain
    ``R3/R1``. The seven faultable passives of the paper's example are
    R1-R5, C1, C2; the inverter's second resistor R6 is treated as the
    fault-free half of a matched pair (documented substitution, DESIGN.md).

    With ``normalized=True`` the element values are the textbook normalized
    design (R = 1 ohm, C = 1 F, w0 = 1 rad/s) and ``f0_hz``/``r_base`` are
    ignored.
    """
    if q <= 0 or gain <= 0:
        raise CircuitError("tow_thomas_biquad: q and gain must be positive")
    if normalized:
        r = 1.0
        c = 1.0
        f0 = 1.0 / TWO_PI
    else:
        r = float(r_base)
        c = 1.0 / (TWO_PI * f0_hz * r)
        f0 = float(f0_hz)

    ckt = Circuit("tow_thomas_biquad")
    ckt.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
    # Stage 1 -- lossy inverting integrator (summing node x1, output "bp").
    ckt.add_resistor("R1", "in", "x1", r / gain)      # input, sets DC gain
    ckt.add_resistor("R2", "x1", "bp", q * r)         # damping, sets Q
    ckt.add_capacitor("C1", "x1", "bp", c)
    ckt.add_resistor("R3", "inv", "x1", r)            # loop feedback
    # Stage 2 -- inverting integrator (output "lp" is the observed output).
    ckt.add_resistor("R4", "bp", "x2", r)
    ckt.add_capacitor("C2", "x2", "lp", c)
    # Stage 3 -- unity inverter closing the loop.
    ckt.add_resistor("R5", "lp", "x3", r)
    ckt.add_resistor("R6", "x3", "inv", r)            # matched pair, not faulted
    if ideal_opamps:
        ckt.add_ideal_opamp("OA1", "0", "x1", "bp")
        ckt.add_ideal_opamp("OA2", "0", "x2", "lp")
        ckt.add_ideal_opamp("OA3", "0", "x3", "inv")
    else:
        ckt.add_opamp_macro("OA1", "0", "x1", "bp")
        ckt.add_opamp_macro("OA2", "0", "x2", "lp")
        ckt.add_opamp_macro("OA3", "0", "x3", "inv")
    ckt.validate()
    return CircuitInfo(
        circuit=ckt,
        input_source="VIN",
        output_node="lp",
        faultable=("R1", "R2", "R3", "R4", "R5", "C1", "C2"),
        f0_hz=f0,
        f_min_hz=f0 / 100.0,
        f_max_hz=f0 * 1000.0,
        description=("Normalized biquad negative-feedback low-pass filter "
                     "(Tow-Thomas, 3 op-amps); the DATE'05 paper's CUT with "
                     "seven faultable passives."),
        extra_outputs={"bandpass": "bp", "inverter": "inv"},
    )


def sallen_key_lowpass(f0_hz: float = 1e3, q: float = 1.0 / math.sqrt(2.0),
                       r_base: float = 1e4,
                       ideal_opamps: bool = True) -> CircuitInfo:
    """Unity-gain Sallen-Key low-pass (2nd order, one op-amp).

    With equal resistors R and capacitor ratio ``C1/C2 = 4 Q^2``::

        w0 = 1 / (R sqrt(C1 C2)),   Q = sqrt(C1/C2) / 2
    """
    if q <= 0:
        raise CircuitError("sallen_key_lowpass: q must be positive")
    r = float(r_base)
    c2 = 1.0 / (TWO_PI * f0_hz * r * 2.0 * q)
    c1 = 4.0 * q * q * c2

    ckt = Circuit("sallen_key_lowpass")
    ckt.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
    ckt.add_resistor("R1", "in", "a", r)
    ckt.add_resistor("R2", "a", "b", r)
    ckt.add_capacitor("C1", "a", "out", c1)   # positive-feedback capacitor
    ckt.add_capacitor("C2", "b", "0", c2)
    if ideal_opamps:
        ckt.add_ideal_opamp("OA1", "b", "out", "out")
    else:
        ckt.add_opamp_macro("OA1", "b", "out", "out")
    ckt.validate()
    return CircuitInfo(
        circuit=ckt,
        input_source="VIN",
        output_node="out",
        faultable=("R1", "R2", "C1", "C2"),
        f0_hz=float(f0_hz),
        f_min_hz=f0_hz / 100.0,
        f_max_hz=f0_hz * 1000.0,
        description="Unity-gain Sallen-Key 2nd-order low-pass.",
    )


def khn_state_variable(f0_hz: float = 1e3, q: float = 1.0,
                       r_base: float = 1e4,
                       ideal_opamps: bool = True) -> CircuitInfo:
    """KHN state-variable biquad (HP/BP/LP outputs, 3 op-amps).

    Summer with equal resistors Ra and band-pass feedback through the
    non-inverting divider R4/R5 with ratio ``alpha = R5/(R4+R5) = 1/(3Q)``::

        Hhp(s) = -s^2 / (s^2 + 3 alpha w0 s + w0^2)

    The observed output is the low-pass node.
    """
    if q <= 1.0 / 3.0 + 1e-12:
        raise CircuitError(
            "khn_state_variable: q must exceed 1/3 for a positive R4")
    r = float(r_base)
    c = 1.0 / (TWO_PI * f0_hz * r)
    alpha = 1.0 / (3.0 * q)
    r5 = r
    r4 = r5 * (1.0 - alpha) / alpha  # R4 = R5 (3Q - 1)

    ckt = Circuit("khn_state_variable")
    ckt.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
    # Summer A1: inverting input sums vin, vlp and vhp through equal Ra.
    ckt.add_resistor("R1", "in", "ns", r)
    ckt.add_resistor("R2", "lp", "ns", r)
    ckt.add_resistor("R3", "hp", "ns", r)
    # Non-inverting side: band-pass feedback divider.
    ckt.add_resistor("R4", "bp", "np", r4)
    ckt.add_resistor("R5", "np", "0", r5)
    # Integrators.
    ckt.add_resistor("R6", "hp", "xi1", r)
    ckt.add_capacitor("C1", "xi1", "bp", c)
    ckt.add_resistor("R7", "bp", "xi2", r)
    ckt.add_capacitor("C2", "xi2", "lp", c)
    if ideal_opamps:
        ckt.add_ideal_opamp("OA1", "np", "ns", "hp")
        ckt.add_ideal_opamp("OA2", "0", "xi1", "bp")
        ckt.add_ideal_opamp("OA3", "0", "xi2", "lp")
    else:
        ckt.add_opamp_macro("OA1", "np", "ns", "hp")
        ckt.add_opamp_macro("OA2", "0", "xi1", "bp")
        ckt.add_opamp_macro("OA3", "0", "xi2", "lp")
    ckt.validate()
    return CircuitInfo(
        circuit=ckt,
        input_source="VIN",
        output_node="lp",
        faultable=("R1", "R2", "R3", "R4", "R5", "R6", "R7", "C1", "C2"),
        f0_hz=float(f0_hz),
        f_min_hz=f0_hz / 100.0,
        f_max_hz=f0_hz * 1000.0,
        description="KHN state-variable biquad; LP output observed.",
        extra_outputs={"highpass": "hp", "bandpass": "bp"},
    )


def mfb_bandpass(f0_hz: float = 1e3, q: float = 2.0, gain: float = 1.0,
                 c_base: float = 1e-8,
                 ideal_opamps: bool = True) -> CircuitInfo:
    """Multiple-feedback (infinite-gain) band-pass, one op-amp.

    Equal capacitors C; design equations for centre frequency ``f0``,
    quality ``q`` and centre-band gain ``gain``::

        R3 = 2 q / (w0 C)            (feedback)
        R1 = R3 / (2 gain)           (input)
        R2 = q / ((2 q^2 - gain) w0 C)  (shunt; needs 2 q^2 > gain)
    """
    if 2.0 * q * q <= gain:
        raise CircuitError(
            "mfb_bandpass: needs 2*q^2 > gain for a positive shunt resistor")
    w0 = TWO_PI * f0_hz
    c = float(c_base)
    r3 = 2.0 * q / (w0 * c)
    r1 = r3 / (2.0 * gain)
    r2 = q / ((2.0 * q * q - gain) * w0 * c)

    ckt = Circuit("mfb_bandpass")
    ckt.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
    ckt.add_resistor("R1", "in", "a", r1)
    ckt.add_resistor("R2", "a", "0", r2)
    ckt.add_capacitor("C1", "a", "x", c)
    ckt.add_capacitor("C2", "a", "out", c)
    ckt.add_resistor("R3", "x", "out", r3)
    if ideal_opamps:
        ckt.add_ideal_opamp("OA1", "0", "x", "out")
    else:
        ckt.add_opamp_macro("OA1", "0", "x", "out")
    ckt.validate()
    return CircuitInfo(
        circuit=ckt,
        input_source="VIN",
        output_node="out",
        faultable=("R1", "R2", "R3", "C1", "C2"),
        f0_hz=float(f0_hz),
        f_min_hz=f0_hz / 100.0,
        f_max_hz=f0_hz * 100.0,
        description="Multiple-feedback band-pass (infinite-gain MFB).",
    )


def twin_t_notch(f0_hz: float = 1e3, r_base: float = 1e4,
                 buffered: bool = True,
                 ideal_opamps: bool = True) -> CircuitInfo:
    """Passive twin-T notch (optionally output-buffered).

    Notch at ``f0 = 1/(2 pi R C)`` with legs R-R/2C and C-C/(R/2).
    """
    r = float(r_base)
    c = 1.0 / (TWO_PI * f0_hz * r)

    ckt = Circuit("twin_t_notch")
    ckt.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
    # Resistive T with shunt capacitor 2C.
    ckt.add_resistor("R1", "in", "tr", r)
    ckt.add_resistor("R2", "tr", "out", r)
    ckt.add_capacitor("C3", "tr", "0", 2.0 * c)
    # Capacitive T with shunt resistor R/2.
    ckt.add_capacitor("C1", "in", "tc", c)
    ckt.add_capacitor("C2", "tc", "out", c)
    ckt.add_resistor("R3", "tc", "0", r / 2.0)
    if buffered:
        if ideal_opamps:
            ckt.add_ideal_opamp("OA1", "out", "buf", "buf")
        else:
            ckt.add_opamp_macro("OA1", "out", "buf", "buf")
        output = "buf"
    else:
        # Unbuffered: add a light load so the output node is well-defined.
        ckt.add_resistor("RL", "out", "0", 100.0 * r)
        output = "out"
    ckt.validate()
    return CircuitInfo(
        circuit=ckt,
        input_source="VIN",
        output_node=output,
        faultable=("R1", "R2", "R3", "C1", "C2", "C3"),
        f0_hz=float(f0_hz),
        f_min_hz=f0_hz / 100.0,
        f_max_hz=f0_hz * 100.0,
        description="Twin-T notch filter (passive, buffered output).",
    )


# Normalized element values (g-parameters) of a 5th-order Butterworth
# low-pass ladder with 1-ohm terminations.
_BUTTERWORTH5_G = (0.6180, 1.6180, 2.0000, 1.6180, 0.6180)


def lc_ladder_lowpass5(f0_hz: float = 1e4,
                       r0: float = 600.0) -> CircuitInfo:
    """Doubly-terminated 5th-order Butterworth LC ladder low-pass.

    Shunt-C / series-L prototype denormalized to cut-off ``f0_hz`` and
    impedance level ``r0``. Passband voltage gain is 0.5 (matched divider).
    """
    w0 = TWO_PI * f0_hz
    ckt = Circuit("lc_ladder_lowpass5")
    ckt.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
    ckt.add_resistor("RS", "in", "n1", r0)
    ckt.add_capacitor("C1", "n1", "0", _BUTTERWORTH5_G[0] / (w0 * r0))
    ckt.add_inductor("L2", "n1", "n2", _BUTTERWORTH5_G[1] * r0 / w0)
    ckt.add_capacitor("C3", "n2", "0", _BUTTERWORTH5_G[2] / (w0 * r0))
    ckt.add_inductor("L4", "n2", "n3", _BUTTERWORTH5_G[3] * r0 / w0)
    ckt.add_capacitor("C5", "n3", "0", _BUTTERWORTH5_G[4] / (w0 * r0))
    ckt.add_resistor("RL", "n3", "0", r0)
    ckt.validate()
    return CircuitInfo(
        circuit=ckt,
        input_source="VIN",
        output_node="n3",
        faultable=("C1", "L2", "C3", "L4", "C5"),
        f0_hz=float(f0_hz),
        f_min_hz=f0_hz / 100.0,
        f_max_hz=f0_hz * 100.0,
        description="Doubly-terminated 5th-order Butterworth LC ladder.",
    )


def rc_ladder(sections: int = 5, r: float = 1e3,
              c: float = 1e-7) -> CircuitInfo:
    """Uniform RC ladder of ``sections`` series-R / shunt-C sections.

    Used by the simulator scaling benchmarks: the MNA matrix grows
    linearly with ``sections``.
    """
    if sections < 1:
        raise CircuitError("rc_ladder: needs at least one section")
    ckt = Circuit(f"rc_ladder_{sections}")
    ckt.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
    previous = "in"
    for index in range(1, sections + 1):
        node = f"n{index}"
        ckt.add_resistor(f"R{index}", previous, node, r)
        ckt.add_capacitor(f"C{index}", node, "0", c)
        previous = node
    ckt.validate()
    f0 = 1.0 / (TWO_PI * r * c)
    return CircuitInfo(
        circuit=ckt,
        input_source="VIN",
        output_node=previous,
        faultable=tuple(ckt.passive_names),
        f0_hz=f0,
        f_min_hz=f0 / 1000.0,
        f_max_hz=f0 * 100.0,
        description=f"Uniform RC ladder, {sections} sections.",
    )


def rc_lowpass(f0_hz: float = 1e3, r: float = 1e4) -> CircuitInfo:
    """Single-pole RC low-pass; the simplest sanity-check circuit."""
    c = 1.0 / (TWO_PI * f0_hz * r)
    ckt = Circuit("rc_lowpass")
    ckt.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
    ckt.add_resistor("R1", "in", "out", r)
    ckt.add_capacitor("C1", "out", "0", c)
    ckt.validate()
    return CircuitInfo(
        circuit=ckt,
        input_source="VIN",
        output_node="out",
        faultable=("R1", "C1"),
        f0_hz=float(f0_hz),
        f_min_hz=f0_hz / 1000.0,
        f_max_hz=f0_hz * 1000.0,
        description="First-order RC low-pass.",
    )


def voltage_divider(ratio: float = 0.5, r_total: float = 2e4) -> CircuitInfo:
    """Purely resistive divider; frequency-flat response of ``ratio``."""
    if not 0.0 < ratio < 1.0:
        raise CircuitError("voltage_divider: ratio must be in (0, 1)")
    r2 = r_total * ratio
    r1 = r_total - r2
    ckt = Circuit("voltage_divider")
    ckt.add_voltage_source("VIN", "in", "0", dc=1.0, ac=1.0)
    ckt.add_resistor("R1", "in", "out", r1)
    ckt.add_resistor("R2", "out", "0", r2)
    ckt.validate()
    return CircuitInfo(
        circuit=ckt,
        input_source="VIN",
        output_node="out",
        faultable=("R1", "R2"),
        f0_hz=1e3,
        f_min_hz=1.0,
        f_max_hz=1e6,
        description="Resistive voltage divider (flat response).",
    )


BENCHMARK_CIRCUITS: Dict[str, Callable[[], CircuitInfo]] = {
    "tow_thomas_biquad": tow_thomas_biquad,
    "sallen_key_lowpass": sallen_key_lowpass,
    "khn_state_variable": khn_state_variable,
    "mfb_bandpass": mfb_bandpass,
    "twin_t_notch": twin_t_notch,
    "lc_ladder_lowpass5": lc_ladder_lowpass5,
    "rc_ladder": rc_ladder,
    "rc_lowpass": rc_lowpass,
    "voltage_divider": voltage_divider,
}


def get_benchmark(name: str, **kwargs) -> CircuitInfo:
    """Instantiate a benchmark circuit by registry name."""
    try:
        factory = BENCHMARK_CIRCUITS[name]
    except KeyError:
        raise CircuitError(
            f"unknown benchmark circuit {name!r}; "
            f"available: {sorted(BENCHMARK_CIRCUITS)}") from None
    return factory(**kwargs)
