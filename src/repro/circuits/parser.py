"""SPICE-like netlist text parser and writer.

Supports the subset of SPICE card syntax the library needs: passives,
independent sources with AC specifications, the four controlled sources,
and op-amps via an ``X``-card with the built-in models ``ideal_opamp`` and
``opamp_macro``. Comments (``*`` full-line, ``;`` trailing), blank lines,
continuation lines (``+``), a title line and ``.end`` are handled.

Example
-------
::

    * Sallen-Key low-pass
    VIN in 0 DC 0 AC 1
    R1 in a 10k
    R2 a b 10k
    C1 a out 22n
    C2 b 0 10n
    XOP1 b out out ideal_opamp
    .end
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Sequence

from ..errors import NetlistParseError, ReproError
from ..units import format_value, parse_value
from .components import (
    CCCS,
    CCVS,
    Capacitor,
    Component,
    CurrentSource,
    IdealOpAmp,
    Inductor,
    OpAmpMacro,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from .netlist import Circuit

__all__ = ["parse_netlist", "parse_netlist_file", "write_netlist",
           "circuit_to_netlist"]

_OPAMP_MODELS = ("ideal_opamp", "opamp_macro")


def _tokenize(line: str) -> List[str]:
    """Split a card into tokens, allowing ``key=value`` to stay intact."""
    return line.split()


def _parse_source_params(tokens: Sequence[str], name: str,
                         line_number: int, line: str):
    """Parse ``[DC v] [AC mag [phase]]`` trailing tokens of a V/I card."""
    dc = 0.0
    ac = 0.0
    phase = 0.0
    index = 0
    tokens = list(tokens)
    # A bare leading number is the DC value (SPICE allows "V1 a 0 5").
    if tokens and tokens[0].upper() not in ("DC", "AC"):
        try:
            dc = parse_value(tokens[0])
            index = 1
        except Exception as exc:
            raise NetlistParseError(
                f"{name}: bad source value {tokens[0]!r}",
                line_number, line) from exc
    while index < len(tokens):
        keyword = tokens[index].upper()
        if keyword == "DC":
            if index + 1 >= len(tokens):
                raise NetlistParseError(f"{name}: DC needs a value",
                                        line_number, line)
            dc = parse_value(tokens[index + 1])
            index += 2
        elif keyword == "AC":
            if index + 1 >= len(tokens):
                raise NetlistParseError(f"{name}: AC needs a magnitude",
                                        line_number, line)
            ac = parse_value(tokens[index + 1])
            index += 2
            if index < len(tokens):
                try:
                    phase = parse_value(tokens[index])
                    index += 1
                except Exception:
                    pass  # next token starts a different keyword
        else:
            raise NetlistParseError(
                f"{name}: unexpected token {tokens[index]!r}",
                line_number, line)
    return dc, ac, phase


def _parse_card(line: str, line_number: int) -> Optional[Component]:
    tokens = _tokenize(line)
    name = tokens[0]
    kind = name[0].upper()
    rest = tokens[1:]

    def need(count: int, what: str) -> None:
        if len(rest) < count:
            raise NetlistParseError(
                f"{name}: expected at least {count} fields ({what})",
                line_number, line)

    if kind == "R":
        need(3, "node node value")
        return Resistor(name, rest[0], rest[1], parse_value(rest[2]))
    if kind == "C":
        need(3, "node node value")
        return Capacitor(name, rest[0], rest[1], parse_value(rest[2]))
    if kind == "L":
        need(3, "node node value")
        return Inductor(name, rest[0], rest[1], parse_value(rest[2]))
    if kind == "V":
        need(2, "node node [DC v] [AC mag phase]")
        dc, ac, phase = _parse_source_params(rest[2:], name, line_number, line)
        return VoltageSource(name, rest[0], rest[1], dc, ac, phase)
    if kind == "I":
        need(2, "node node [DC v] [AC mag phase]")
        dc, ac, phase = _parse_source_params(rest[2:], name, line_number, line)
        return CurrentSource(name, rest[0], rest[1], dc, ac, phase)
    if kind == "E":
        need(5, "out+ out- ctrl+ ctrl- gain")
        return VCVS(name, rest[0], rest[1], rest[2], rest[3],
                    parse_value(rest[4]))
    if kind == "G":
        need(5, "out+ out- ctrl+ ctrl- gm")
        return VCCS(name, rest[0], rest[1], rest[2], rest[3],
                    parse_value(rest[4]))
    if kind == "H":
        need(4, "out+ out- vsource gain")
        return CCVS(name, rest[0], rest[1], rest[2], parse_value(rest[3]))
    if kind == "F":
        need(4, "out+ out- vsource gain")
        return CCCS(name, rest[0], rest[1], rest[2], parse_value(rest[3]))
    if kind == "X":
        need(4, "in+ in- out model [param=value ...]")
        model = rest[3].lower()
        if model not in _OPAMP_MODELS:
            raise NetlistParseError(
                f"{name}: unknown subcircuit model {rest[3]!r}; "
                f"supported: {_OPAMP_MODELS}", line_number, line)
        params = {}
        for token in rest[4:]:
            if "=" not in token:
                raise NetlistParseError(
                    f"{name}: expected param=value, got {token!r}",
                    line_number, line)
            key, _, value = token.partition("=")
            params[key.lower()] = parse_value(value)
        if model == "ideal_opamp":
            if params:
                raise NetlistParseError(
                    f"{name}: ideal_opamp takes no parameters",
                    line_number, line)
            return IdealOpAmp(name, rest[0], rest[1], rest[2])
        return OpAmpMacro(name, rest[0], rest[1], rest[2], params=params)
    raise NetlistParseError(
        f"unsupported card type {name[0]!r} in {name!r}", line_number, line)


def parse_netlist(text: str, name: Optional[str] = None) -> Circuit:
    """Parse SPICE-like netlist text into a :class:`Circuit`.

    The first line is treated as a title if it does not parse as a card
    (SPICE convention). The circuit name defaults to that title.
    """
    raw_lines = text.splitlines()
    # Join continuation lines first ("+" cards extend the previous card).
    logical: List[tuple] = []  # (line_number, text)
    for number, raw in enumerate(raw_lines, start=1):
        stripped = raw.split(";", 1)[0].rstrip()
        if not stripped.strip():
            continue
        if stripped.lstrip().startswith("+") and logical:
            prev_number, prev_text = logical[-1]
            logical[-1] = (prev_number,
                           prev_text + " " + stripped.lstrip()[1:].strip())
            continue
        logical.append((number, stripped.strip()))

    circuit_name = name or "netlist"
    components: List[Component] = []
    for position, (line_number, line) in enumerate(logical):
        if line.startswith("*"):
            if position == 0 and name is None:
                circuit_name = line.lstrip("* ").strip() or circuit_name
            continue
        lowered = line.lower()
        if lowered.startswith(".end"):
            break
        if lowered.startswith("."):
            # Analysis cards (.ac, .op, ...) are accepted and ignored:
            # the library drives analyses through its Python API.
            continue
        if position == 0 and not re.match(r"^[RCLVIEGHFX]", line,
                                          re.IGNORECASE):
            if name is None:
                circuit_name = line
            continue
        try:
            components.append(_parse_card(line, line_number))
        except NetlistParseError:
            raise
        except (ReproError, ValueError) as exc:
            # Bad element values (UnitError), invalid component
            # definitions (ComponentError) and any stray ValueError
            # surface as a parse error carrying the offending line, so
            # generated-netlist failures are attributable to a card.
            raise NetlistParseError(str(exc), line_number, line) from exc

    if not components:
        raise NetlistParseError("netlist contains no components")
    circuit = Circuit(circuit_name, components)
    circuit.validate()
    return circuit


def parse_netlist_file(path: str | Path,
                       name: Optional[str] = None) -> Circuit:
    """Parse a netlist file; the circuit name defaults to the file stem."""
    path = Path(path)
    return parse_netlist(path.read_text(),
                         name=name or path.stem)


def circuit_to_netlist(circuit: Circuit) -> str:
    """Serialise a :class:`Circuit` back to netlist text."""
    lines = [f"* {circuit.name}"]
    for component in circuit:
        lines.append(_format_card(component))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_netlist(circuit: Circuit, path: str | Path) -> Path:
    """Write the circuit to a netlist file and return the path."""
    path = Path(path)
    path.write_text(circuit_to_netlist(circuit))
    return path


def _format_card(component: Component) -> str:
    if isinstance(component, (Resistor, Capacitor, Inductor)):
        return (f"{component.name} {component.positive} {component.negative} "
                f"{format_value(component.value)}")
    if isinstance(component, VoltageSource) or isinstance(component,
                                                          CurrentSource):
        card = (f"{component.name} {component.positive} "
                f"{component.negative} DC {format_value(component.value)}")
        if component.ac_magnitude > 0.0:
            card += f" AC {format_value(component.ac_magnitude)}"
            if component.ac_phase_deg:
                card += f" {component.ac_phase_deg:g}"
        return card
    if isinstance(component, VCVS):
        return (f"{component.name} {component.positive} {component.negative} "
                f"{component.ctrl_positive} {component.ctrl_negative} "
                f"{component.gain:g}")
    if isinstance(component, VCCS):
        return (f"{component.name} {component.positive} {component.negative} "
                f"{component.ctrl_positive} {component.ctrl_negative} "
                f"{component.transconductance:g}")
    if isinstance(component, CCVS):
        return (f"{component.name} {component.positive} {component.negative} "
                f"{component.ctrl_source} {component.transresistance:g}")
    if isinstance(component, CCCS):
        return (f"{component.name} {component.positive} {component.negative} "
                f"{component.ctrl_source} {component.gain:g}")
    if isinstance(component, IdealOpAmp):
        return (f"{component.name} {component.in_positive} "
                f"{component.in_negative} {component.output} ideal_opamp")
    if isinstance(component, OpAmpMacro):
        params = " ".join(f"{key}={format_value(value)}"
                          for key, value in sorted(component.params.items()))
        return (f"{component.name} {component.in_positive} "
                f"{component.in_negative} {component.output} opamp_macro "
                f"{params}")
    raise NetlistParseError(
        f"cannot serialise component type {type(component).__name__}")
