"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the pipeline can catch one type. Subclasses are grouped by
subsystem: circuit construction, netlist parsing, simulation, fault handling,
and the GA/diagnosis layers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ReproDeprecationWarning(DeprecationWarning):
    """A deprecated repro spelling (keyword, string knob) was used.

    Every backwards-compatibility shim in the library warns with this
    category, so deployments can turn exactly the library's own
    deprecations into errors (``-W
    error::repro.errors.ReproDeprecationWarning``) without tripping on
    third-party ``DeprecationWarning`` noise. CI runs the tier-1 suite
    under that filter to prove no internal caller uses a deprecated
    spelling.
    """


class CircuitError(ReproError):
    """Invalid circuit construction (duplicate names, bad nodes, ...)."""


class ComponentError(CircuitError):
    """Invalid component definition (non-positive value, bad terminals)."""


class NetlistParseError(CircuitError):
    """A SPICE-like netlist file/string could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None,
                 line: str | None = None) -> None:
        location = f" (line {line_number}: {line!r})" if line_number else ""
        super().__init__(f"{message}{location}")
        self.line_number = line_number
        self.line = line


class SimulationError(ReproError):
    """The simulator could not produce a result."""


class SingularCircuitError(SimulationError):
    """The MNA matrix is singular.

    Usually caused by a floating node (no DC path to ground), a loop of
    ideal voltage sources, or an op-amp without feedback at DC.
    """


class ConvergenceError(SimulationError):
    """An iterative analysis failed to converge."""


class FaultError(ReproError):
    """Invalid fault specification or injection target."""


class DictionaryError(ReproError):
    """Fault dictionary construction, persistence or lookup failed."""


class FamilyError(CircuitError):
    """A parameterised circuit-family generator could not produce a
    well-posed circuit.

    Carries the family name and seed so fleet-scale corpus runs can
    report exactly which generated instance failed.
    """

    def __init__(self, message: str, family: str | None = None,
                 seed: int | None = None) -> None:
        context = ""
        if family is not None:
            context = f" [family={family}" + \
                (f" seed={seed}]" if seed is not None else "]")
        super().__init__(f"{message}{context}")
        self.family = family
        self.seed = seed


class CorpusError(ReproError):
    """A corpus spec is invalid or a corpus run could not complete."""


class TrajectoryError(ReproError):
    """Trajectory construction or geometry query failed."""


class GAError(ReproError):
    """Genetic-algorithm configuration or execution error."""


class DiagnosisError(ReproError):
    """Diagnosis could not be performed (empty trajectory set, ...)."""


class StoreError(ReproError):
    """Artifact-store persistence or lookup failed."""


class ServiceError(ReproError):
    """The diagnosis service could not handle a request."""


class ServiceOverloadedError(ServiceError):
    """Backpressure refused a request (pending queue at capacity).

    Raised by the async serving front when ``overflow="reject"`` and
    more than ``max_pending`` requests are already queued or in flight.
    Clients should retry with backoff.
    """


class CodecError(ServiceError):
    """A serving-layer request/response payload could not be
    encoded or decoded."""


class ClusterError(ServiceError):
    """The diagnosis cluster could not route or serve a request."""


class ReplicaUnavailableError(ClusterError):
    """A cluster replica is unreachable or failed mid-request.

    The cluster catches this internally to re-route the request onto
    the next replica of the hash ring; it only reaches the caller when
    every replica that could own the circuit is down.
    """


class ReplicaTimeoutError(ReplicaUnavailableError):
    """A replica did not answer within the request timeout.

    The replica may simply be saturated, not dead: the cluster
    re-routes the affected request to the next ring replica but does
    NOT mark the slow replica down -- only failed transport or a
    failed health probe does that.
    """
