"""Signature mapping: frequency samples -> Cartesian coordinates.

Section 2.2 of the paper: stimulating the CUT with a test vector of
frequencies (f1, f2, ...) is equivalent to sampling its magnitude response
at those frequencies; the samples become the coordinates of a point in a
Cartesian space, and *"some simplification is introduced if we consider
the golden behaviour point as the Cartesian coordinate plan origin"*.

:class:`SignatureMapper` encapsulates the test vector and the two mapping
choices (dB vs linear magnitude scale; absolute vs golden-relative) and
converts responses, dictionaries and response surfaces into signature
points/matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import TrajectoryError
from ..faults.dictionary import FaultDictionary
from ..faults.surface import ResponseSurface
from ..sim.ac import FrequencyResponse
from ..units import db_to_linear

__all__ = ["SignatureMapper"]

_SCALES = ("db", "linear")


@dataclass(frozen=True)
class SignatureMapper:
    """Maps magnitude responses to points in signature space.

    Parameters
    ----------
    test_freqs_hz:
        The test vector: one coordinate axis per frequency. The paper's
        example uses two frequencies (an XY plane); any count >= 1 works
        and the diagnosis geometry generalises to n dimensions.
    scale:
        ``"db"`` (default) uses dB magnitudes -- deviations act roughly
        additively and the origin translation is a gain ratio. ``"linear"``
        uses plain magnitudes (the paper's figures; ablated in T-ABL).
    relative_to_golden:
        Subtract the golden signature, putting the golden behaviour at
        the origin (the paper's simplification). Disable to work in
        absolute coordinates.
    """

    test_freqs_hz: Tuple[float, ...]
    scale: str = "db"
    relative_to_golden: bool = True

    def __post_init__(self) -> None:
        freqs = tuple(float(f) for f in self.test_freqs_hz)
        if len(freqs) < 1:
            raise TrajectoryError("test vector needs at least 1 frequency")
        if any(f <= 0.0 for f in freqs):
            raise TrajectoryError("test frequencies must be positive")
        if len(set(freqs)) != len(freqs):
            raise TrajectoryError(
                f"test vector has duplicate frequencies: {freqs}; "
                "duplicated axes are degenerate")
        if self.scale not in _SCALES:
            raise TrajectoryError(
                f"scale must be one of {_SCALES}, got {self.scale!r}")
        object.__setattr__(self, "test_freqs_hz", freqs)

    @property
    def dimension(self) -> int:
        """Signature space dimension (= number of test frequencies)."""
        return len(self.test_freqs_hz)

    # ------------------------------------------------------------------
    # Single responses
    # ------------------------------------------------------------------
    def _sample(self, response: FrequencyResponse) -> np.ndarray:
        values_db = np.atleast_1d(np.asarray(
            response.magnitude_db_at(np.array(self.test_freqs_hz))))
        if self.scale == "db":
            return values_db
        return np.asarray(db_to_linear(values_db), dtype=float)

    def signature(self, response: FrequencyResponse,
                  golden: Optional[FrequencyResponse] = None) -> np.ndarray:
        """Signature point of one measured/simulated response.

        ``golden`` is required when ``relative_to_golden`` is set.
        """
        point = self._sample(response)
        if self.relative_to_golden:
            if golden is None:
                raise TrajectoryError(
                    "relative mapper needs the golden response")
            point = point - self._sample(golden)
        return point

    # ------------------------------------------------------------------
    # Batched over a dictionary / surface
    # ------------------------------------------------------------------
    def signature_matrix_from_db(self, sampled_db: np.ndarray
                                 ) -> np.ndarray:
        """Signature matrix from presampled dB magnitudes.

        ``sampled_db`` is ``(1 + n_faults, dimension)`` with the golden
        row first -- exactly what
        :meth:`~repro.faults.surface.ResponseSurface.sample_db` returns
        at this mapper's test frequencies. Splitting the sampling from
        the mapping lets population-level GA evaluation sample the
        surface once for many candidate vectors.
        """
        sampled_db = np.asarray(sampled_db, dtype=float)
        golden_db = sampled_db[0]
        faults_db = sampled_db[1:]
        if self.scale == "db":
            if self.relative_to_golden:
                return faults_db - golden_db[None, :]
            return faults_db
        faults_lin = np.asarray(db_to_linear(faults_db), dtype=float)
        if self.relative_to_golden:
            golden_lin = np.asarray(db_to_linear(golden_db), dtype=float)
            return faults_lin - golden_lin[None, :]
        return faults_lin

    def golden_signature_from_db(self, golden_db: np.ndarray) -> np.ndarray:
        """Golden point from its presampled dB magnitudes."""
        if self.relative_to_golden:
            return np.zeros(self.dimension)
        if self.scale == "db":
            return np.asarray(golden_db, dtype=float)
        return np.asarray(db_to_linear(golden_db), dtype=float)

    def signature_matrix(self, source: FaultDictionary | ResponseSurface
                         ) -> np.ndarray:
        """Signatures of every fault entry, shape (n_faults, dimension).

        Accepts a dictionary (exact sampling of each stored response) or
        a response surface (vectorised interpolation -- the fast path the
        GA uses). Row order matches the dictionary entry order.
        """
        freqs = np.array(self.test_freqs_hz)
        if isinstance(source, ResponseSurface):
            return self.signature_matrix_from_db(source.sample_db(freqs))
        if isinstance(source, FaultDictionary):
            golden = source.golden if self.relative_to_golden else None
            return np.vstack([self.signature(entry.response, golden)
                              for entry in source.entries])
        raise TrajectoryError(
            f"signature_matrix expects a FaultDictionary or "
            f"ResponseSurface, got {type(source).__name__}")

    def golden_signature(self, source: FaultDictionary | ResponseSurface
                         ) -> np.ndarray:
        """Golden point: the origin for a relative mapper."""
        if self.relative_to_golden:
            return np.zeros(self.dimension)
        freqs = np.array(self.test_freqs_hz)
        if isinstance(source, ResponseSurface):
            golden_db = source.golden_db(freqs)
            if self.scale == "db":
                return golden_db
            return np.asarray(db_to_linear(golden_db), dtype=float)
        if isinstance(source, FaultDictionary):
            return self._sample(source.golden)
        raise TrajectoryError(
            f"golden_signature expects a FaultDictionary or "
            f"ResponseSurface, got {type(source).__name__}")

    def with_freqs(self, test_freqs_hz: Sequence[float]) -> "SignatureMapper":
        """Same mapping options, different test vector."""
        return SignatureMapper(tuple(test_freqs_hz), self.scale,
                               self.relative_to_golden)
