"""Trajectory separation metrics: the quantities the GA optimises.

The paper's fitness criterion searches for *"a graphical configuration for
the trajectories that minimizes the number of common pathways, and
intersections among the fault trajectories"* -- formalised here as:

* :func:`count_intersections` -- proper crossings between segments of
  *different* trajectories (2-D exact; n-D via a proximity surrogate);
* :func:`count_common_pathways` -- collinear overlapping segment pairs;
* :func:`min_separation` -- the smallest inter-trajectory distance with
  the structural origin contact excluded (margin; used by the extended
  fitness functions and by ambiguity analysis).

The GA calls these thousands of times per run, so the internals operate
on the trajectory set's *stacked* segment arrays: one vectorised
orientation computation covers every segment pair of every trajectory
pair at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import TrajectoryError
from .geometry import _EPS, _pairwise_orientations, cross2
from .trajectory import TrajectorySet

__all__ = [
    "TrajectoryMetrics",
    "count_intersections",
    "count_common_pathways",
    "conflict_counts_batch",
    "min_separation",
    "pairwise_separations",
    "evaluate_metrics",
]

# In dimensions > 2 two random polylines generically never intersect;
# what breaks diagnosis there is *proximity*. Trajectory pairs closer
# than this fraction of the trajectory scale count as pseudo-intersecting.
_ND_CONTACT_FRACTION = 1e-3

# Collinearity epsilon scale for overlap ("common pathway") detection.
_OVERLAP_EPS_SCALE = 1e-9


@dataclass(frozen=True)
class TrajectoryMetrics:
    """Summary of one trajectory configuration.

    ``min_separation``/``mean_separation`` are ``nan`` when the metrics
    were computed conflicts-only (the paper-fitness fast path).
    """

    intersections: int
    common_pathways: int
    min_separation: float
    mean_separation: float
    per_pair_separation: Dict[Tuple[str, str], float]

    @property
    def total_conflicts(self) -> int:
        """Crossings + overlaps: the I of the paper's fitness."""
        return self.intersections + self.common_pathways


# ----------------------------------------------------------------------
# Stacked-array internals
# ----------------------------------------------------------------------
def _stacked(trajectories: TrajectorySet
             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    starts, ends, owners = trajectories.all_segments()
    return starts, ends, owners


def _orientation_data(starts: np.ndarray, ends: np.ndarray,
                      owners: np.ndarray):
    """All-pairs orientation determinants + cross-trajectory mask."""
    d1, d2, d3, d4 = _pairwise_orientations(starts, ends, starts, ends)
    different = owners[:, None] != owners[None, :]
    lengths_sq = np.sum((ends - starts) ** 2, axis=1)
    scale = max(float(lengths_sq.max(initial=0.0)), _EPS)
    return d1, d2, d3, d4, different, scale


def _overlap_loop(collinear: np.ndarray, starts: np.ndarray,
                  ends: np.ndarray) -> int:
    """Positive-length 1-D interval overlap count over a collinear mask.

    The single implementation behind the scalar and batched overlap
    counters, so both are the same floating-point code path.
    """
    count = 0
    rows, cols = np.nonzero(collinear)
    for i, j in zip(rows, cols):
        direction = ends[i] - starts[i]
        norm = float(np.dot(direction, direction))
        if norm <= _EPS:
            continue
        s0 = float(np.dot(starts[j] - starts[i], direction)) / norm
        s1 = float(np.dot(ends[j] - starts[i], direction)) / norm
        lo = max(0.0, min(s0, s1))
        hi = min(1.0, max(s0, s1))
        if hi - lo > 1e-9:
            count += 1
    return count


def _counts_2d(starts: np.ndarray, ends: np.ndarray,
               d1: np.ndarray, d2: np.ndarray, d3: np.ndarray,
               d4: np.ndarray, different: np.ndarray,
               scale: float) -> Tuple[int, int]:
    """(crossings, overlaps) from shared orientation determinants."""
    eps = _EPS * scale
    crossing = (d1 * d2 < -eps) & (d3 * d4 < -eps) & different
    # The relation is symmetric; each unordered pair appears twice.
    intersections = int(np.count_nonzero(crossing) // 2)
    eps_overlap = _OVERLAP_EPS_SCALE * scale
    collinear = ((np.abs(d1) <= eps_overlap) &
                 (np.abs(d2) <= eps_overlap) &
                 (np.abs(d3) <= eps_overlap) &
                 (np.abs(d4) <= eps_overlap) & different)
    collinear = np.triu(collinear)  # unordered pairs once
    overlaps = _overlap_loop(collinear, starts, ends) \
        if np.any(collinear) else 0
    return intersections, overlaps


def _crossing_count_2d(trajectories: TrajectorySet) -> int:
    starts, ends, owners = _stacked(trajectories)
    d1, d2, d3, d4, different, scale = _orientation_data(starts, ends,
                                                         owners)
    eps = _EPS * scale
    crossing = (d1 * d2 < -eps) & (d3 * d4 < -eps) & different
    # The relation is symmetric; each unordered pair appears twice.
    return int(np.count_nonzero(crossing) // 2)


def _overlap_count_2d(trajectories: TrajectorySet) -> int:
    starts, ends, owners = _stacked(trajectories)
    d1, d2, d3, d4, different, scale = _orientation_data(starts, ends,
                                                         owners)
    eps = _OVERLAP_EPS_SCALE * scale
    collinear = ((np.abs(d1) <= eps) & (np.abs(d2) <= eps) &
                 (np.abs(d3) <= eps) & (np.abs(d4) <= eps) & different)
    collinear = np.triu(collinear)  # unordered pairs once
    if not np.any(collinear):
        return 0
    return _overlap_loop(collinear, starts, ends)


def conflict_counts_batch(starts: np.ndarray, ends: np.ndarray,
                          owners: np.ndarray, chunk_size: int = 32
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """(intersections, common_pathways) for a 2-D trajectory-set batch.

    ``starts``/``ends`` are ``(K, S, 2)`` stacked segment arrays sharing
    one ``owners`` layout -- K candidate configurations of the *same*
    trajectory structure (the GA population case). Counts are identical
    to calling :func:`count_intersections` /
    :func:`count_common_pathways` per member: the orientation
    determinants are the same element-wise operations with a leading
    batch axis, and the rare overlap resolution runs the exact scalar
    loop.
    """
    starts = np.asarray(starts, dtype=float)
    ends = np.asarray(ends, dtype=float)
    if starts.ndim != 3 or starts.shape[2] != 2 or \
            starts.shape != ends.shape:
        raise TrajectoryError(
            f"conflict_counts_batch needs matching (K, S, 2) arrays, "
            f"got {starts.shape} and {ends.shape}")
    num_members, num_segments = starts.shape[:2]
    owners = np.asarray(owners)
    if owners.shape != (num_segments,):
        raise TrajectoryError(
            f"owners must have shape ({num_segments},), got "
            f"{owners.shape}")
    different = owners[:, None] != owners[None, :]
    upper = np.triu(np.ones((num_segments, num_segments), dtype=bool))
    intersections = np.empty(num_members, dtype=int)
    overlaps = np.zeros(num_members, dtype=int)
    for low in range(0, num_members, chunk_size):
        high = min(low + chunk_size, num_members)
        s = starts[low:high]
        e = ends[low:high]
        direction = e - s
        b_dir = direction[:, None, :, :]               # (k, 1, S, 2)
        a_dir = direction[:, :, None, :]               # (k, S, 1, 2)
        diff_ab = s[:, :, None, :] - s[:, None, :, :]  # a_start - b_start
        diff_ba = s[:, None, :, :] - s[:, :, None, :]  # b_start - a_start
        d1 = cross2(b_dir, diff_ab)
        d2 = cross2(b_dir, e[:, :, None, :] - s[:, None, :, :])
        d3 = cross2(a_dir, diff_ba)
        d4 = cross2(a_dir, e[:, None, :, :] - s[:, :, None, :])
        lengths_sq = np.sum(direction * direction, axis=-1)
        scale = np.maximum(lengths_sq.max(axis=1), _EPS)
        eps = (_EPS * scale)[:, None, None]
        crossing = (d1 * d2 < -eps) & (d3 * d4 < -eps) & different[None]
        intersections[low:high] = \
            np.count_nonzero(crossing, axis=(1, 2)) // 2
        eps_overlap = (_OVERLAP_EPS_SCALE * scale)[:, None, None]
        collinear = ((np.abs(d1) <= eps_overlap) &
                     (np.abs(d2) <= eps_overlap) &
                     (np.abs(d3) <= eps_overlap) &
                     (np.abs(d4) <= eps_overlap) &
                     different[None] & upper[None])
        for offset in np.nonzero(np.any(collinear, axis=(1, 2)))[0]:
            overlaps[low + offset] = _overlap_loop(
                collinear[offset], s[offset], e[offset])
    return intersections, overlaps


def _vertex_segment_distances(trajectories: TrajectorySet
                              ) -> Tuple[np.ndarray, np.ndarray,
                                         np.ndarray, np.ndarray,
                                         np.ndarray]:
    """Distance matrix from every vertex to every segment, plus masks.

    Returns ``(distances, vertex_owner, segment_owner, is_origin,
    valid)`` where ``distances`` is (n_vertices, n_segments) and
    ``valid`` masks cross-trajectory, non-origin-vertex entries.
    """
    starts, ends, seg_owner = _stacked(trajectories)
    vertices = []
    vertex_owner = []
    is_origin = []
    for index, trajectory in enumerate(trajectories):
        vertices.append(trajectory.points)
        vertex_owner.append(np.full(trajectory.points.shape[0], index))
        is_origin.append(trajectory.vertex_is_origin())
    points = np.vstack(vertices)                      # (V, d)
    vertex_owner = np.concatenate(vertex_owner)
    is_origin = np.concatenate(is_origin)

    direction = ends - starts                         # (S, d)
    length_sq = np.sum(direction * direction, axis=1)  # (S,)
    safe = np.where(length_sq > _EPS, length_sq, 1.0)
    offset = points[:, None, :] - starts[None, :, :]   # (V, S, d)
    t = np.einsum("vsd,sd->vs", offset, direction) / safe[None, :]
    t = np.clip(np.where(length_sq[None, :] > _EPS, t, 0.0), 0.0, 1.0)
    closest = starts[None, :, :] + t[:, :, None] * direction[None, :, :]
    distances = np.linalg.norm(points[:, None, :] - closest, axis=2)

    valid = (vertex_owner[:, None] != seg_owner[None, :]) & \
            (~is_origin)[:, None]
    return distances, vertex_owner, seg_owner, is_origin, valid


def _pairwise_separations_fast(trajectories: TrajectorySet
                               ) -> Dict[Tuple[str, str], float]:
    distances, vertex_owner, seg_owner, _, valid = \
        _vertex_segment_distances(trajectories)
    masked = np.where(valid, distances, np.inf)
    names = trajectories.components
    count = len(names)
    result: Dict[Tuple[str, str], float] = {}
    for i, j in combinations(range(count), 2):
        a_to_b = masked[np.ix_(vertex_owner == i, seg_owner == j)]
        b_to_a = masked[np.ix_(vertex_owner == j, seg_owner == i)]
        best = np.inf
        if a_to_b.size:
            best = min(best, float(a_to_b.min()))
        if b_to_a.size:
            best = min(best, float(b_to_a.min()))
        result[(names[i], names[j])] = best
    return result


# ----------------------------------------------------------------------
# Public metrics
# ----------------------------------------------------------------------
def count_intersections(trajectories: TrajectorySet) -> int:
    """Crossings between segments of different trajectories.

    In 2-D this is the exact proper-crossing count (shared origin contact
    excluded by the strict orientation test). In higher dimensions it
    falls back to counting trajectory pairs that approach within a small
    fraction of the trajectory scale.
    """
    if len(trajectories) < 2:
        return 0
    if trajectories.dimension == 2:
        return _crossing_count_2d(trajectories)
    threshold = _ND_CONTACT_FRACTION * _trajectory_scale(trajectories)
    separations = _pairwise_separations_fast(trajectories)
    return sum(1 for value in separations.values() if value < threshold)


def count_common_pathways(trajectories: TrajectorySet) -> int:
    """Collinear overlapping segment pairs between different trajectories.

    Only meaningful in 2-D (where the paper's fitness lives); returns 0
    for higher dimensions, where the proximity surrogate in
    :func:`count_intersections` already captures degeneracy.
    """
    if len(trajectories) < 2 or trajectories.dimension != 2:
        return 0
    return _overlap_count_2d(trajectories)


def _trajectory_scale(trajectories: TrajectorySet) -> float:
    """Characteristic size: the largest point norm across the set."""
    largest = 0.0
    for trajectory in trajectories:
        largest = max(largest, float(
            np.max(np.linalg.norm(trajectory.points, axis=1))))
    return max(largest, 1e-30)


def pairwise_separations(trajectories: TrajectorySet
                         ) -> Dict[Tuple[str, str], float]:
    """Minimum distance per trajectory pair (origin contact excluded)."""
    if len(trajectories) < 2:
        raise TrajectoryError(
            "pairwise separation needs >= 2 trajectories")
    return _pairwise_separations_fast(trajectories)


def min_separation(trajectories: TrajectorySet) -> float:
    """Smallest inter-trajectory distance (0 if any pair crosses)."""
    separations = pairwise_separations(trajectories)
    if trajectories.dimension == 2 and \
            count_intersections(trajectories) > 0:
        return 0.0
    return min(separations.values())


def evaluate_metrics(trajectories: TrajectorySet,
                     include_separations: bool = True
                     ) -> TrajectoryMetrics:
    """All separation metrics of one configuration in one pass.

    ``include_separations=False`` skips the distance computation (the
    paper fitness only needs conflict counts) and reports separations as
    ``nan``.
    """
    if trajectories.dimension == 2 and len(trajectories) >= 2:
        # Fused 2-D fast path: the crossing and overlap counts share
        # one orientation-determinant computation (the GA calls this
        # thousands of times; counts are identical to the split calls).
        starts, ends, owners = _stacked(trajectories)
        d1, d2, d3, d4, different, scale = _orientation_data(
            starts, ends, owners)
        intersections, overlaps = _counts_2d(
            starts, ends, d1, d2, d3, d4, different, scale)
    else:
        intersections = count_intersections(trajectories)
        overlaps = count_common_pathways(trajectories)
    if not include_separations or len(trajectories) < 2:
        return TrajectoryMetrics(
            intersections=intersections,
            common_pathways=overlaps,
            min_separation=float("nan"),
            mean_separation=float("nan"),
            per_pair_separation={},
        )
    separations = pairwise_separations(trajectories)
    values = np.array(list(separations.values()))
    minimum = 0.0 if (trajectories.dimension == 2 and
                      intersections > 0) else float(values.min())
    return TrajectoryMetrics(
        intersections=intersections,
        common_pathways=overlaps,
        min_separation=minimum,
        mean_separation=float(values.mean()),
        per_pair_separation=separations,
    )
