"""Fault trajectories: ordered signature points per deviated component.

Section 2.3: *"Crescent/De-crescent parametric deviations on components
within a given range shall produce a set of coordinate points in the plane
which can be connected, to compose what we define a fault trajectory."*

A :class:`FaultTrajectory` is the polyline of one component's parametric
sweep: points ordered by deviation, with the 0 % (golden) point included
-- the origin when the mapper is golden-relative. A :class:`TrajectorySet`
bundles one trajectory per component plus the construction metadata, and
is the object the GA fitness and the diagnoser consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TrajectoryError
from ..faults.dictionary import FaultDictionary
from ..faults.models import ParametricFault
from ..faults.surface import ResponseSurface
from .mapping import SignatureMapper

__all__ = ["FaultTrajectory", "TrajectorySet"]


@dataclass(frozen=True)
class FaultTrajectory:
    """One component's fault trajectory.

    ``deviations`` are sorted ascending and include 0.0 (the golden
    point); ``points`` is the matching (n_points, dimension) array.
    """

    component: str
    deviations: Tuple[float, ...]
    points: np.ndarray

    def __post_init__(self) -> None:
        points = np.asarray(self.points, dtype=float)
        deviations = tuple(float(d) for d in self.deviations)
        if points.ndim != 2 or points.shape[0] != len(deviations):
            raise TrajectoryError(
                f"{self.component}: points shape {points.shape} does not "
                f"match {len(deviations)} deviations")
        if len(deviations) < 2:
            raise TrajectoryError(
                f"{self.component}: a trajectory needs >= 2 points")
        if any(b <= a for a, b in zip(deviations, deviations[1:])):
            raise TrajectoryError(
                f"{self.component}: deviations must be strictly "
                f"increasing, got {deviations}")
        if not any(abs(d) < 1e-12 for d in deviations):
            raise TrajectoryError(
                f"{self.component}: trajectory must include the golden "
                "point (deviation 0)")
        object.__setattr__(self, "deviations", deviations)
        object.__setattr__(self, "points", points)

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    @property
    def num_segments(self) -> int:
        return len(self.deviations) - 1

    @property
    def origin_index(self) -> int:
        """Index of the golden (0 %) point."""
        return int(np.argmin(np.abs(np.asarray(self.deviations))))

    def segments(self) -> Tuple[np.ndarray, np.ndarray]:
        """(starts, ends) arrays of the polyline segments."""
        return self.points[:-1], self.points[1:]

    def point_for(self, deviation: float) -> np.ndarray:
        """Signature point at a stored deviation (exact match)."""
        for index, stored in enumerate(self.deviations):
            if abs(stored - deviation) < 1e-12:
                return self.points[index]
        raise TrajectoryError(
            f"{self.component}: no stored point at deviation {deviation}; "
            f"have {self.deviations}")

    def interpolate_deviation(self, segment_index: int, t: float) -> float:
        """Deviation value at parameter ``t`` along one segment.

        This inverts the trajectory parameterisation: the diagnoser finds
        the nearest segment and foot parameter, and this maps it back to
        an estimated % deviation.
        """
        if not 0 <= segment_index < self.num_segments:
            raise TrajectoryError(
                f"{self.component}: segment index {segment_index} out of "
                f"range [0, {self.num_segments})")
        t = float(np.clip(t, 0.0, 1.0))
        d0 = self.deviations[segment_index]
        d1 = self.deviations[segment_index + 1]
        return d0 + t * (d1 - d0)

    def vertex_is_origin(self) -> np.ndarray:
        """Boolean mask marking the golden vertex (for metric exclusion)."""
        mask = np.zeros(len(self.deviations), dtype=bool)
        mask[self.origin_index] = True
        return mask


class TrajectorySet:
    """One fault trajectory per component, under a fixed mapper.

    Construction inserts the golden point at deviation 0 into every
    component's sweep, producing trajectories that all pass through the
    origin (for a golden-relative mapper) exactly as in the paper's
    figures.
    """

    def __init__(self, mapper: SignatureMapper,
                 trajectories: Sequence[FaultTrajectory]) -> None:
        if not trajectories:
            raise TrajectoryError("TrajectorySet needs >= 1 trajectory")
        dimension = trajectories[0].dimension
        names = [t.component for t in trajectories]
        if len(set(names)) != len(names):
            raise TrajectoryError(
                f"duplicate components in trajectory set: {names}")
        for trajectory in trajectories:
            if trajectory.dimension != dimension:
                raise TrajectoryError(
                    "all trajectories must share one signature dimension")
        if mapper.dimension != dimension:
            raise TrajectoryError(
                f"mapper dimension {mapper.dimension} does not match "
                f"trajectories ({dimension})")
        self.mapper = mapper
        self.trajectories: Tuple[FaultTrajectory, ...] = tuple(trajectories)
        self._by_component: Dict[str, FaultTrajectory] = {
            t.component: t for t in trajectories}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_source(cls, source: FaultDictionary | ResponseSurface,
                    mapper: SignatureMapper,
                    components: Optional[Sequence[str]] = None,
                    *, signature_matrix: Optional[np.ndarray] = None,
                    golden_point: Optional[np.ndarray] = None
                    ) -> "TrajectorySet":
        """Build trajectories from a dictionary or response surface.

        Only parametric-fault entries form trajectories (a trajectory is
        a parametric sweep by definition); entries of other fault kinds
        are ignored here and handled by the catastrophic classifier.

        ``signature_matrix``/``golden_point`` optionally inject
        precomputed mapping results (must match what the mapper would
        produce from ``source``); population-level GA evaluation uses
        this to sample the response surface once for a whole candidate
        batch.
        """
        dictionary = source.dictionary if isinstance(
            source, ResponseSurface) else source
        if signature_matrix is None:
            signature_matrix = mapper.signature_matrix(source)
        if golden_point is None:
            golden_point = mapper.golden_signature(source)
        matrix = np.asarray(signature_matrix, dtype=float)
        golden_point = np.asarray(golden_point, dtype=float)

        groups: Dict[str, List[Tuple[float, np.ndarray]]] = {}
        for row, entry in zip(matrix, dictionary.entries):
            if not isinstance(entry.fault, ParametricFault):
                continue
            groups.setdefault(entry.fault.component, []).append(
                (entry.fault.deviation, row))
        if components is not None:
            missing = set(components) - set(groups)
            if missing:
                raise TrajectoryError(
                    f"no parametric entries for {sorted(missing)}")
            groups = {name: groups[name] for name in components}
        if not groups:
            raise TrajectoryError(
                "source contains no parametric fault entries")

        trajectories = []
        for component, pairs in groups.items():
            pairs = sorted(pairs, key=lambda item: item[0])
            deviations = [pair[0] for pair in pairs]
            if any(abs(d) < 1e-12 for d in deviations):
                raise TrajectoryError(
                    f"{component}: dictionary contains a 0% 'fault'; the "
                    "golden point is inserted automatically")
            points = [pair[1] for pair in pairs]
            # Insert the golden point at deviation 0, between the
            # negative and positive halves of the sweep.
            insert_at = int(np.searchsorted(np.asarray(deviations), 0.0))
            deviations.insert(insert_at, 0.0)
            points.insert(insert_at, golden_point)
            trajectories.append(FaultTrajectory(
                component, tuple(deviations), np.vstack(points)))
        return cls(mapper, trajectories)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.trajectories)

    def __iter__(self) -> Iterator[FaultTrajectory]:
        return iter(self.trajectories)

    def __getitem__(self, component: str) -> FaultTrajectory:
        try:
            return self._by_component[component]
        except KeyError:
            raise TrajectoryError(
                f"no trajectory for component {component!r}; have "
                f"{sorted(self._by_component)}") from None

    @property
    def components(self) -> Tuple[str, ...]:
        return tuple(t.component for t in self.trajectories)

    @property
    def dimension(self) -> int:
        return self.trajectories[0].dimension

    def all_segments(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All segments stacked: (starts, ends, owner_index).

        ``owner_index[i]`` is the index into :attr:`trajectories` owning
        segment ``i`` -- the flat layout the diagnoser's vectorised
        nearest-segment query works on.
        """
        starts, ends, owners = [], [], []
        for index, trajectory in enumerate(self.trajectories):
            s, e = trajectory.segments()
            starts.append(s)
            ends.append(e)
            owners.append(np.full(s.shape[0], index, dtype=int))
        return (np.vstack(starts), np.vstack(ends),
                np.concatenate(owners))
