"""Computational geometry for fault trajectories.

Two families of primitives:

* **2-D segment crossing tests** -- the paper's fitness counts
  intersections between trajectories drawn in the (f1, f2) signature
  plane. ``count_segment_crossings`` performs a vectorised all-pairs
  proper-crossing count; endpoint contact (e.g. the shared origin where
  every trajectory starts) is *not* a proper crossing and is excluded by
  the strict orientation test. Collinear overlapping pairs ("common
  pathways" in the paper's wording) are counted separately.

* **n-D point/segment projection** -- diagnosis drops perpendiculars from
  an observed fault point onto trajectory segments; this works in any
  signature dimension, so the n-frequency extension reuses the same code.

All functions take plain numpy arrays: points are rows, segments are
(start, end) row pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import TrajectoryError

__all__ = [
    "cross2",
    "count_segment_crossings",
    "count_collinear_overlaps",
    "segment_crossing_matrix",
    "crossing_points",
    "project_point_onto_segments",
    "point_to_segments_distance",
    "polyline_arc_length",
    "polyline_min_distance",
]

# Orientation values with magnitude below this (relative to the segment
# scale) are treated as exactly collinear. Signature coordinates are dB
# differences of order 0.1..10, so 1e-12 is far below physical meaning.
_EPS = 1e-12


def _as_points(array: np.ndarray, name: str, dim: int | None = None
               ) -> np.ndarray:
    out = np.asarray(array, dtype=float)
    if out.ndim == 1:
        out = out[None, :]
    if out.ndim != 2:
        raise TrajectoryError(f"{name} must be a (n, d) array")
    if dim is not None and out.shape[1] != dim:
        raise TrajectoryError(
            f"{name} must have dimension {dim}, got {out.shape[1]}")
    return out


def cross2(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """z-component of the 2-D cross product, broadcasting over rows."""
    return u[..., 0] * v[..., 1] - u[..., 1] * v[..., 0]


def _pairwise_orientations(a_start: np.ndarray, a_end: np.ndarray,
                           b_start: np.ndarray, b_end: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                      np.ndarray]:
    """Orientation determinants for every (segment_a, segment_b) pair.

    Shapes: inputs (na, 2) and (nb, 2); outputs (na, nb).
    d1/d2: where a's endpoints lie relative to line b;
    d3/d4: where b's endpoints lie relative to line a.
    """
    b_dir = (b_end - b_start)[None, :, :]          # (1, nb, 2)
    a_dir = (a_end - a_start)[:, None, :]          # (na, 1, 2)
    d1 = cross2(b_dir, a_start[:, None, :] - b_start[None, :, :])
    d2 = cross2(b_dir, a_end[:, None, :] - b_start[None, :, :])
    d3 = cross2(a_dir, b_start[None, :, :] - a_start[:, None, :])
    d4 = cross2(a_dir, b_end[None, :, :] - a_start[:, None, :])
    return d1, d2, d3, d4


def _scale(a_start, a_end, b_start, b_end) -> float:
    """Characteristic squared length used to normalise the epsilon."""
    lengths = [float(np.max(np.sum((e - s) ** 2, axis=-1), initial=0.0))
               for s, e in ((a_start, a_end), (b_start, b_end))]
    return max(max(lengths), _EPS)


def segment_crossing_matrix(a_start: np.ndarray, a_end: np.ndarray,
                            b_start: np.ndarray, b_end: np.ndarray
                            ) -> np.ndarray:
    """Boolean (na, nb) matrix of *proper* crossings.

    A proper crossing means the interiors intersect at a single point:
    strict sign changes on both orientation pairs. Segments that merely
    touch at an endpoint (shared trajectory origin) do not cross.
    """
    a_start = _as_points(a_start, "a_start", 2)
    a_end = _as_points(a_end, "a_end", 2)
    b_start = _as_points(b_start, "b_start", 2)
    b_end = _as_points(b_end, "b_end", 2)
    if a_start.shape != a_end.shape or b_start.shape != b_end.shape:
        raise TrajectoryError("segment start/end arrays must match")
    d1, d2, d3, d4 = _pairwise_orientations(a_start, a_end, b_start, b_end)
    eps = _EPS * _scale(a_start, a_end, b_start, b_end)
    strictly_opposite_a = (d1 * d2) < -eps
    strictly_opposite_b = (d3 * d4) < -eps
    return strictly_opposite_a & strictly_opposite_b


def count_segment_crossings(a_start: np.ndarray, a_end: np.ndarray,
                            b_start: np.ndarray, b_end: np.ndarray) -> int:
    """Number of proper crossings between two segment sets."""
    return int(np.count_nonzero(
        segment_crossing_matrix(a_start, a_end, b_start, b_end)))


def count_collinear_overlaps(a_start: np.ndarray, a_end: np.ndarray,
                             b_start: np.ndarray, b_end: np.ndarray,
                             eps_scale: float = 1e-9) -> int:
    """Pairs of collinear segments whose projections overlap.

    This is the paper's "common pathway" degeneracy: two trajectories
    sharing a stretch of the same line cannot be told apart there. The
    overlap must have positive length; touching at a single shared point
    does not count.
    """
    a_start = _as_points(a_start, "a_start", 2)
    a_end = _as_points(a_end, "a_end", 2)
    b_start = _as_points(b_start, "b_start", 2)
    b_end = _as_points(b_end, "b_end", 2)
    d1, d2, d3, d4 = _pairwise_orientations(a_start, a_end, b_start, b_end)
    eps = eps_scale * _scale(a_start, a_end, b_start, b_end)
    collinear = (np.abs(d1) <= eps) & (np.abs(d2) <= eps) & \
                (np.abs(d3) <= eps) & (np.abs(d4) <= eps)
    if not np.any(collinear):
        return 0
    # Project collinear pairs onto segment a's direction and test
    # 1-D interval overlap with positive length.
    count = 0
    rows, cols = np.nonzero(collinear)
    for i, j in zip(rows, cols):
        direction = a_end[i] - a_start[i]
        norm = float(np.dot(direction, direction))
        if norm <= _EPS:
            continue  # degenerate zero-length segment
        t0 = 0.0
        t1 = 1.0
        s0 = float(np.dot(b_start[j] - a_start[i], direction)) / norm
        s1 = float(np.dot(b_end[j] - a_start[i], direction)) / norm
        lo = max(min(t0, t1), min(s0, s1))
        hi = min(max(t0, t1), max(s0, s1))
        if hi - lo > 1e-9:
            count += 1
    return count


def crossing_points(a_start: np.ndarray, a_end: np.ndarray,
                    b_start: np.ndarray, b_end: np.ndarray) -> np.ndarray:
    """Coordinates of every proper crossing, shape (k, 2) (for plots)."""
    a_start = _as_points(a_start, "a_start", 2)
    a_end = _as_points(a_end, "a_end", 2)
    b_start = _as_points(b_start, "b_start", 2)
    b_end = _as_points(b_end, "b_end", 2)
    mask = segment_crossing_matrix(a_start, a_end, b_start, b_end)
    d1, d2, _, _ = _pairwise_orientations(a_start, a_end, b_start, b_end)
    points = []
    rows, cols = np.nonzero(mask)
    for i, j in zip(rows, cols):
        denominator = d1[i, j] - d2[i, j]
        if abs(denominator) <= _EPS:
            continue
        t = d1[i, j] / denominator
        points.append(a_start[i] + t * (a_end[i] - a_start[i]))
    if not points:
        return np.empty((0, 2))
    return np.vstack(points)


def project_point_onto_segments(point: np.ndarray, starts: np.ndarray,
                                ends: np.ndarray
                                ) -> Tuple[np.ndarray, np.ndarray,
                                           np.ndarray]:
    """Perpendicular projection of one point onto many n-D segments.

    Returns ``(distances, t_clamped, interior)`` each of shape (k,):

    * ``distances`` -- Euclidean distance to the closest point of each
      segment;
    * ``t_clamped`` -- segment parameter of that closest point in [0, 1];
    * ``interior`` -- True where the *unclamped* perpendicular foot falls
      strictly inside the segment (the paper's "a perpendicular exists").
    """
    point = np.asarray(point, dtype=float)
    starts = _as_points(starts, "starts")
    ends = _as_points(ends, "ends", starts.shape[1])
    if point.shape != (starts.shape[1],):
        raise TrajectoryError(
            f"point dimension {point.shape} does not match segments "
            f"({starts.shape[1]})")
    direction = ends - starts                       # (k, d)
    length_sq = np.sum(direction * direction, axis=1)
    safe = np.where(length_sq > _EPS, length_sq, 1.0)
    t_raw = np.sum((point[None, :] - starts) * direction, axis=1) / safe
    t_raw = np.where(length_sq > _EPS, t_raw, 0.0)
    degenerate = length_sq <= _EPS
    if np.any(degenerate):
        # A (near-)zero-length segment still has two distinct float
        # endpoints: snap to whichever is closer, so the projection
        # distance never exceeds the distance to either endpoint.
        nearer_end = (np.linalg.norm(point[None, :] - ends, axis=1) <
                      np.linalg.norm(point[None, :] - starts, axis=1))
        t_raw = np.where(degenerate & nearer_end, 1.0, t_raw)
    interior = (t_raw > 0.0) & (t_raw < 1.0) & (length_sq > _EPS)
    t_clamped = np.clip(t_raw, 0.0, 1.0)
    closest = starts + t_clamped[:, None] * direction
    distances = np.linalg.norm(point[None, :] - closest, axis=1)
    return distances, t_clamped, interior


def point_to_segments_distance(point: np.ndarray, starts: np.ndarray,
                               ends: np.ndarray) -> np.ndarray:
    """Distances only (see :func:`project_point_onto_segments`)."""
    distances, _, _ = project_point_onto_segments(point, starts, ends)
    return distances


def polyline_arc_length(points: np.ndarray) -> float:
    """Total length of a polyline given as (n, d) points."""
    points = _as_points(points, "points")
    if points.shape[0] < 2:
        return 0.0
    return float(np.sum(np.linalg.norm(np.diff(points, axis=0), axis=1)))


def polyline_min_distance(poly_a: np.ndarray, poly_b: np.ndarray,
                          skip_a: np.ndarray | None = None,
                          skip_b: np.ndarray | None = None) -> float:
    """Approximate minimum distance between two polylines.

    Minimum over (vertices of A -> segments of B) and (vertices of B ->
    segments of A). Exact when the closest approach involves a vertex;
    for two skew interior points it overestimates slightly, which is
    acceptable for the separation *margin* metric (trajectories are
    densely sampled). ``skip_a``/``skip_b`` mask vertices to ignore as
    query points -- fault trajectories all pass through the golden origin,
    and that structural contact must not collapse the margin to zero.
    """
    poly_a = _as_points(poly_a, "poly_a")
    poly_b = _as_points(poly_b, "poly_b", poly_a.shape[1])
    if poly_a.shape[0] < 2 or poly_b.shape[0] < 2:
        raise TrajectoryError("polylines need at least 2 points")
    b_starts, b_ends = poly_b[:-1], poly_b[1:]
    a_starts, a_ends = poly_a[:-1], poly_a[1:]
    best = np.inf
    mask_a = np.ones(poly_a.shape[0], dtype=bool) if skip_a is None \
        else ~np.asarray(skip_a, dtype=bool)
    mask_b = np.ones(poly_b.shape[0], dtype=bool) if skip_b is None \
        else ~np.asarray(skip_b, dtype=bool)
    for keep, vertex in zip(mask_a, poly_a):
        if not keep:
            continue
        best = min(best, float(np.min(
            point_to_segments_distance(vertex, b_starts, b_ends))))
    for keep, vertex in zip(mask_b, poly_b):
        if not keep:
            continue
        best = min(best, float(np.min(
            point_to_segments_distance(vertex, a_starts, a_ends))))
    return best
