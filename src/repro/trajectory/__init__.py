"""Fault-trajectory machinery: signature mapping, trajectories, geometry."""

from .geometry import (
    count_collinear_overlaps,
    count_segment_crossings,
    crossing_points,
    point_to_segments_distance,
    polyline_arc_length,
    polyline_min_distance,
    project_point_onto_segments,
    segment_crossing_matrix,
)
from .mapping import SignatureMapper
from .metrics import (
    TrajectoryMetrics,
    count_common_pathways,
    count_intersections,
    evaluate_metrics,
    min_separation,
    pairwise_separations,
)
from .trajectory import FaultTrajectory, TrajectorySet

__all__ = [
    "SignatureMapper",
    "FaultTrajectory",
    "TrajectorySet",
    "TrajectoryMetrics",
    "count_intersections",
    "count_common_pathways",
    "min_separation",
    "pairwise_separations",
    "evaluate_metrics",
    "count_segment_crossings",
    "count_collinear_overlaps",
    "segment_crossing_matrix",
    "crossing_points",
    "project_point_onto_segments",
    "point_to_segments_distance",
    "polyline_arc_length",
    "polyline_min_distance",
]
