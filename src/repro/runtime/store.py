"""Content-addressed artifact store for pipeline products.

Every expensive artifact of the ATPG flow -- the dense fault
dictionary, the GA search result, the exact test-vector dictionary and
the trajectory set -- is a deterministic function of (netlist canonical
form, fault universe spec, frequency grid, pipeline config [, seed]).
This module hashes that tuple into a stable SHA-256 key and persists
the artifacts under it, so a repeat ``FaultTrajectoryATPG.run()`` with
``store=`` loads everything back instead of re-simulating.

*Where* the artifacts live is pluggable (see
:mod:`repro.runtime.backends`): the default
:class:`~repro.runtime.backends.LocalDirBackend` keeps the original
``<root>/<kind>/<key[:2]>/<key>/`` on-disk layout (byte-compatible with
pre-refactor store roots), :class:`~repro.runtime.backends.InMemoryBackend`
holds them in process memory, and
:class:`~repro.runtime.backends.ShardedBackend` consistent-hashes keys
across several child backends. The store itself owns key construction,
artifact (de)serialisation and hit/miss/put accounting.

Each artifact is keyed on *only* the inputs it depends on, so sweeping
a GA knob reuses the cached dictionary and two configs landing on the
same test vector share the exact dictionary:

* dictionary      <- problem (netlist, ports, universe) + dense grid
* ga              <- dictionary key + search config + seed
* exact           <- problem + test vector
* trajectories    <- exact key + mapper options

Execution-only knobs (``n_workers``, ``executor``) never enter a key:
a dictionary built on 8 workers is byte-identical to the serial one
and must share its cache slot.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from ..circuits.library import CircuitInfo
from ..errors import DictionaryError, StoreError
from ..faults.dictionary import FaultDictionary, fault_to_json
from ..faults.universe import FaultUniverse
from ..ga.engine import GAResult, GenerationStats
from ..trajectory.mapping import SignatureMapper
from ..trajectory.trajectory import FaultTrajectory, TrajectorySet
from . import telemetry
from .backends import (ArtifactRecord, LocalDirBackend, StorageBackend,
                       coerce_backend)

__all__ = ["ArtifactStore", "StoreStats", "as_store", "problem_key",
           "derive_key", "ga_search_key", "trajectory_key"]


@dataclass
class StoreStats:
    """Hit/miss/put counters for one store instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    def snapshot(self) -> dict:
        return dataclasses.asdict(self)


def as_store(source: Union["ArtifactStore", StorageBackend, str, Path,
                           None]) -> Optional["ArtifactStore"]:
    """Coerce anything store-shaped into an :class:`ArtifactStore`.

    Accepts an existing store (returned as-is), a bare
    :class:`~repro.runtime.backends.StorageBackend`, a local root path,
    or ``None`` (no caching). The seam every ``store=`` parameter in
    the pipeline and serving layers runs through.
    """
    if source is None or isinstance(source, ArtifactStore):
        return source
    return ArtifactStore(backend=coerce_backend(source))


# ----------------------------------------------------------------------
# Key construction
# ----------------------------------------------------------------------
def _digest(payload) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def problem_key(info: CircuitInfo, universe: FaultUniverse) -> str:
    """Stable content key of one diagnosis problem statement.

    Hashes the netlist canonical form, the measurement ports and the
    fault universe spec -- the inputs every simulation artifact depends
    on. Identical inputs produce the identical key in any process on
    any machine (floats are rendered in shortest round-trip form).
    Artifact-specific inputs (grid, search config, seed, test vector)
    are layered on with :func:`derive_key`.
    """
    payload = {
        "netlist": universe.circuit.canonical_form(),
        "output_node": info.output_node,
        "input_source": info.input_source,
        "universe": [fault_to_json(fault) for fault in universe.faults],
    }
    return _digest(payload)


def derive_key(base_key: str, *parts) -> str:
    """Sub-key of a problem key (e.g. per-grid dictionary)."""
    return _digest([base_key, list(parts)])


def ga_search_key(dictionary_key: str, info: CircuitInfo, config,
                  seed) -> str:
    """Key of one GA search: the surface it ran on + every knob that
    steers it (frequency space bounds, fitness shape, GA hyper-
    parameters, seed). Knobs that never change the search --
    ``ambiguity_threshold``, ``n_workers``, ``executor``, ``engine``
    (both simulation engines are bitwise-identical) -- stay out, so
    sweeping them reuses the cached result. (The deviation grid
    reaches this key through ``dictionary_key``: it reshapes the
    universe the surface was built from.)"""
    payload = {
        "f_min_hz": float(info.f_min_hz),
        "f_max_hz": float(info.f_max_hz),
        "num_frequencies": config.num_frequencies,
        "signature_scale": config.signature_scale,
        "relative_to_golden": config.relative_to_golden,
        "fitness": config.fitness,
        "overlap_weight": config.overlap_weight,
        "margin_weight": config.margin_weight,
        "margin_scale": config.margin_scale,
        "ga": dataclasses.asdict(config.ga),
        "seed": seed,
    }
    return _digest([dictionary_key, "ga", payload])


def trajectory_key(exact_key: str, config) -> str:
    """Key of a trajectory set: the exact dictionary it was mapped
    from (test vector included there) + the mapper options."""
    return _digest([exact_key, "trajectories", config.signature_scale,
                    config.relative_to_golden])


# ----------------------------------------------------------------------
# GA result (de)serialisation
# ----------------------------------------------------------------------
def _ga_result_to_json(result: GAResult) -> dict:
    return {
        "best_freqs_hz": [float(f) for f in result.best_freqs_hz],
        "best_fitness": result.best_fitness,
        "generations_run": result.generations_run,
        "evaluations": result.evaluations,
        "elapsed_seconds": result.elapsed_seconds,
        "history": [dataclasses.asdict(stats) for stats in result.history],
        "final_population": np.asarray(result.final_population,
                                       dtype=float).tolist(),
        "final_fitness": np.asarray(result.final_fitness,
                                    dtype=float).tolist(),
    }


def _ga_result_from_json(data: dict) -> GAResult:
    history = [GenerationStats(
        generation=entry["generation"],
        best_fitness=entry["best_fitness"],
        mean_fitness=entry["mean_fitness"],
        std_fitness=entry["std_fitness"],
        best_freqs_hz=tuple(entry["best_freqs_hz"]),
    ) for entry in data["history"]]
    return GAResult(
        best_freqs_hz=tuple(data["best_freqs_hz"]),
        best_fitness=data["best_fitness"],
        history=history,
        generations_run=data["generations_run"],
        evaluations=data["evaluations"],
        elapsed_seconds=data["elapsed_seconds"],
        final_population=np.asarray(data["final_population"], dtype=float),
        final_fitness=np.asarray(data["final_fitness"], dtype=float),
    )


class ArtifactStore:
    """Content-addressed cache of pipeline artifacts.

    Parameters
    ----------
    root:
        Store root directory: shorthand for
        ``backend=LocalDirBackend(root)`` (the original on-disk store,
        byte-compatible with pre-backend roots).
    backend:
        Any :class:`~repro.runtime.backends.StorageBackend` --
        in-memory, sharded, or a custom implementation. Exactly one of
        ``root`` / ``backend`` must be given.
    registry:
        Metrics registry receiving ``repro_store_*`` families (labelled
        by backend class); defaults to the process registry. The
        per-instance :class:`StoreStats` is kept alongside for the
        JSON ``snapshot()`` surface.
    """

    def __init__(self, root: Union[str, Path, None] = None, *,
                 backend: Optional[StorageBackend] = None,
                 registry: Optional[telemetry.MetricsRegistry] = None,
                 ) -> None:
        if (root is None) == (backend is None):
            raise StoreError(
                "pass exactly one of a store root path or backend=")
        self.backend = backend if backend is not None \
            else LocalDirBackend(root)
        self.stats = StoreStats()
        self.registry = registry if registry is not None \
            else telemetry.REGISTRY
        label = type(self.backend).__name__
        reg = self.registry
        self._hits_total = reg.counter(
            "repro_store_hits_total",
            "Artifact reads served from the store.",
            ("backend",)).labels(label)
        self._misses_total = reg.counter(
            "repro_store_misses_total",
            "Artifact reads that missed (absent or unreadable).",
            ("backend",)).labels(label)
        self._puts_total = reg.counter(
            "repro_store_puts_total",
            "Artifacts published to the store.", ("backend",)).labels(label)
        self._evictions_total = reg.counter(
            "repro_store_evictions_total",
            "Artifacts evicted by prune().", ("backend",)).labels(label)
        self._evicted_bytes_total = reg.counter(
            "repro_store_evicted_bytes_total",
            "Bytes reclaimed by prune().", ("backend",)).labels(label)
        # Lazy gauge: backend disk usage is computed at scrape time.
        reg.gauge(
            "repro_store_bytes",
            "Total artifact bytes held by the backend.",
            ("backend",)).labels(label).set_function(
                self.backend.disk_usage)

    @property
    def root(self) -> Optional[Path]:
        """The local root directory, when the backend has one."""
        return getattr(self.backend, "root", None)

    # -- key helpers exposed on the instance so callers need no extra
    # -- imports (core.atpg stays free of runtime imports).
    problem_key = staticmethod(problem_key)
    derive_key = staticmethod(derive_key)
    ga_search_key = staticmethod(ga_search_key)
    trajectory_key = staticmethod(trajectory_key)

    # ------------------------------------------------------------------
    # Backend plumbing
    # ------------------------------------------------------------------
    def has(self, kind: str, key: str) -> bool:
        return self.backend.has(kind, key)

    def _open(self, kind: str, key: str) -> Optional[Path]:
        slot = self.backend.open(kind, key)
        if slot is not None:
            self.stats.hits += 1
            return slot
        self.stats.misses += 1
        self._misses_total.inc()
        return None

    #: Read failures that mean "this cached artifact is gone or
    #: unreadable" -- vanished mid-read (concurrent prune), a
    #: transient I/O fault, or corrupt bytes on disk. All degrade to a
    #: miss via :meth:`_vanished`; anything else still raises.
    _UNREADABLE = (FileNotFoundError, OSError, EOFError, ValueError,
                   KeyError, zipfile.BadZipFile, DictionaryError)

    #: The corruption-shaped subset: the slot's *content* is bad, so
    #: the slot is deleted to let a recompute republish. Transient
    #: faults (plain OSError: EIO, EMFILE, stale NFS handles) must NOT
    #: delete a healthy artifact other replicas rely on.
    _CORRUPT = (EOFError, ValueError, KeyError, zipfile.BadZipFile,
                DictionaryError)

    def _vanished(self, kind: str, key: str,
                  error: BaseException) -> None:
        """The artifact could not be read after a successful open.

        Degrades to an honest miss so the caller recomputes. A
        corruption-shaped failure additionally vacates the slot --
        first-writer-wins publication would otherwise keep the bad
        copy forever and every future run would re-simulate without
        ever self-healing."""
        if isinstance(error, self._CORRUPT):
            try:
                if self.backend.has(kind, key):
                    self.backend.delete(kind, key)
            except OSError:
                pass             # read-only/flaky root: miss anyway
        self.stats.hits -= 1
        self.stats.misses += 1
        # Registry hits are only counted on a *completed* load, so this
        # correction path just records the miss (counters stay monotonic).
        self._misses_total.inc()

    def _publish(self, kind: str, key: str, populate) -> None:
        """Write an artifact atomically through the backend.

        ``populate`` receives a scratch directory path. If another
        writer wins the publication race the scratch copy is discarded
        -- both writers produced identical content by construction.
        """
        published = self.backend.publish(kind, key, populate)
        if published:
            self.stats.puts += 1
            self._puts_total.inc()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def disk_usage(self) -> int:
        """Total artifact bytes held by the backend."""
        return self.backend.disk_usage()

    def prune(self, max_bytes: int) -> Tuple[ArtifactRecord, ...]:
        """Evict least-recently-used artifacts until at most
        ``max_bytes`` remain; returns the evicted records. Reads touch
        an artifact's recency, so the hot working set survives."""
        evicted = self.backend.prune(max_bytes)
        if evicted:
            self._evictions_total.inc(len(evicted))
            self._evicted_bytes_total.inc(
                sum(record.n_bytes for record in evicted))
        return evicted

    # ------------------------------------------------------------------
    # Fault dictionaries
    # ------------------------------------------------------------------
    def load_dictionary(self, kind: str, key: str
                        ) -> Optional[FaultDictionary]:
        slot = self._open(kind, key)
        if slot is None:
            return None
        try:
            dictionary = FaultDictionary.load(slot / "dictionary")
        except self._UNREADABLE as exc:
            self._vanished(kind, key, exc)
            return None
        self._hits_total.inc()
        return dictionary

    def save_dictionary(self, kind: str, key: str,
                        dictionary: FaultDictionary) -> None:
        self._publish(kind, key,
                      lambda scratch: dictionary.save(scratch / "dictionary"))

    # ------------------------------------------------------------------
    # Generic JSON artifacts (corpus per-circuit results, ...)
    # ------------------------------------------------------------------
    def load_json(self, kind: str, key: str) -> Optional[dict]:
        """Load a JSON artifact saved by :meth:`save_json`, or ``None``
        on a miss (including unreadable/corrupt slots, which self-heal
        like every other artifact kind)."""
        slot = self._open(kind, key)
        if slot is None:
            return None
        try:
            data = json.loads((slot / "data.json").read_text())
        except self._UNREADABLE as exc:
            self._vanished(kind, key, exc)
            return None
        self._hits_total.inc()
        return data

    def save_json(self, kind: str, key: str, data: dict) -> None:
        """Publish a JSON-serialisable dict under ``(kind, key)``.

        First-writer-wins like every artifact: concurrent writers must
        produce identical content for one key (content-addressed keys
        make that true by construction)."""
        payload = json.dumps(data, sort_keys=True)
        self._publish(
            kind, key,
            lambda scratch: (scratch / "data.json").write_text(payload))

    # ------------------------------------------------------------------
    # GA results
    # ------------------------------------------------------------------
    def load_ga_result(self, key: str) -> Optional[GAResult]:
        slot = self._open("ga", key)
        if slot is None:
            return None
        try:
            data = json.loads((slot / "result.json").read_text())
            result = _ga_result_from_json(data)
        except self._UNREADABLE as exc:
            self._vanished("ga", key, exc)
            return None
        self._hits_total.inc()
        return result

    def save_ga_result(self, key: str, result: GAResult) -> None:
        payload = json.dumps(_ga_result_to_json(result))
        self._publish(
            "ga", key,
            lambda scratch: (scratch / "result.json").write_text(payload))

    # ------------------------------------------------------------------
    # Trajectory sets
    # ------------------------------------------------------------------
    def load_trajectories(self, key: str) -> Optional[TrajectorySet]:
        slot = self._open("trajectories", key)
        if slot is None:
            return None
        try:
            metadata = json.loads(
                (slot / "trajectories.json").read_text())
            arrays = np.load(slot / "trajectories.npz")
            mapper = SignatureMapper(
                tuple(metadata["mapper"]["test_freqs_hz"]),
                scale=metadata["mapper"]["scale"],
                relative_to_golden=metadata["mapper"]
                ["relative_to_golden"])
            trajectories = []
            for index, component in enumerate(metadata["components"]):
                trajectories.append(FaultTrajectory(
                    component,
                    tuple(metadata["deviations"][index]),
                    arrays[f"points_{index}"]))
        except self._UNREADABLE as exc:
            self._vanished("trajectories", key, exc)
            return None
        self._hits_total.inc()
        return TrajectorySet(mapper, trajectories)

    def save_trajectories(self, key: str,
                          trajectories: TrajectorySet) -> None:
        mapper = trajectories.mapper
        metadata = {
            "mapper": {
                "test_freqs_hz": [float(f) for f in mapper.test_freqs_hz],
                "scale": mapper.scale,
                "relative_to_golden": mapper.relative_to_golden,
            },
            "components": list(trajectories.components),
            "deviations": [[float(d) for d in t.deviations]
                           for t in trajectories],
        }
        arrays = {f"points_{index}": t.points
                  for index, t in enumerate(trajectories)}

        def populate(scratch: Path) -> None:
            (scratch / "trajectories.json").write_text(
                json.dumps(metadata))
            np.savez_compressed(scratch / "trajectories.npz", **arrays)

        self._publish("trajectories", key, populate)
