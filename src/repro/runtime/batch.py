"""Batched nearest-segment diagnosis.

:class:`~repro.diagnosis.classifier.TrajectoryClassifier` answers one
query at a time: a Python call per point, each projecting onto every
trajectory segment. That is the serving hot path, and a diagnosis
service sees *batches* of measured responses -- so this module
precomputes the segment tensors once and classifies an ``(N, F)`` batch
with fully vectorised NumPy: one ``(N, S, D)`` projection, one masked
argmin per row, one gather for the deviation estimates.

The batch path reproduces the scalar classifier *bitwise*: every
floating-point reduction runs over the same operands in the same order
as :func:`repro.trajectory.geometry.project_point_onto_segments`, the
candidate masking and first-minimum tie-breaking match ``np.argmin``'s
scalar semantics, and the per-component ranking uses the same stable
ordering. The equivalence is asserted per benchmark circuit in the test
suite.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..diagnosis.classifier import Diagnosis, TrajectoryClassifier
from ..errors import DiagnosisError
from ..sim.ac import FrequencyResponse
from ..trajectory.geometry import _EPS
from ..trajectory.trajectory import TrajectorySet
from ..units import db_to_linear

__all__ = ["BatchDiagnoser"]

ResponseBatch = Union[np.ndarray, Sequence[FrequencyResponse]]


class BatchDiagnoser:
    """Vectorised many-point version of :class:`TrajectoryClassifier`.

    Precomputes flat segment tensors (starts, ends, directions, owner
    and per-segment deviation endpoints) from a trajectory set, then
    classifies whole batches of signature points or measured responses
    in single NumPy operations.
    """

    def __init__(self, trajectories: TrajectorySet,
                 golden: Optional[FrequencyResponse] = None) -> None:
        self.trajectories = trajectories
        self.golden = golden
        starts, ends, owners = trajectories.all_segments()
        self._starts = starts                          # (S, D)
        self._ends = ends                              # (S, D)
        self._owners = owners                          # (S,)
        self._direction = ends - starts                # (S, D)
        self._length_sq = np.sum(self._direction * self._direction,
                                 axis=1)               # (S,)
        self._safe = np.where(self._length_sq > _EPS, self._length_sq, 1.0)
        # Deviation endpoints of every flat segment (vectorises
        # FaultTrajectory.interpolate_deviation) and component names.
        d0: List[float] = []
        d1: List[float] = []
        for trajectory in trajectories:
            d0.extend(trajectory.deviations[:-1])
            d1.extend(trajectory.deviations[1:])
        self._seg_dev0 = np.array(d0, dtype=float)     # (S,)
        self._seg_dev1 = np.array(d1, dtype=float)     # (S,)
        self._components: Tuple[str, ...] = trajectories.components
        # all_segments() stacks segments trajectory-by-trajectory, so
        # owner groups are contiguous: reduceat offsets give exact
        # per-trajectory distance minima.
        counts = [t.num_segments for t in trajectories]
        self._group_offsets = np.concatenate(
            ([0], np.cumsum(counts)[:-1])).astype(int)

    # ------------------------------------------------------------------
    # Signature construction
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self.trajectories.dimension

    def _golden_sample_db(self) -> np.ndarray:
        if self.golden is None:
            raise DiagnosisError(
                "batch diagnoser needs the golden response to map "
                "measured responses; pass golden= at construction")
        freqs = np.array(self.trajectories.mapper.test_freqs_hz)
        return np.atleast_1d(np.asarray(
            self.golden.magnitude_db_at(freqs)))

    def signatures_from_db(self, magnitudes_db: np.ndarray) -> np.ndarray:
        """Signature points for an (N, F) matrix of dB magnitudes.

        Each row holds the measured dB magnitudes at the mapper's test
        frequencies, in ascending-frequency order -- the wire format a
        measurement frontend produces without ever materialising
        :class:`FrequencyResponse` objects.
        """
        mapper = self.trajectories.mapper
        matrix = np.asarray(magnitudes_db, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != mapper.dimension:
            raise DiagnosisError(
                f"expected an (N, {mapper.dimension}) magnitude matrix, "
                f"got shape {matrix.shape}")
        if mapper.scale != "db":
            matrix = np.asarray(db_to_linear(matrix), dtype=float)
        if mapper.relative_to_golden:
            golden_db = self._golden_sample_db()
            golden = golden_db if mapper.scale == "db" else np.asarray(
                db_to_linear(golden_db), dtype=float)
            matrix = matrix - golden[None, :]
        return matrix

    def signatures(self, responses: ResponseBatch) -> np.ndarray:
        """Signature points for any accepted response batch.

        This is exactly the conversion :meth:`classify_responses`
        applies before classification; it is exposed so callers that
        coalesce several batches (the async serving front) can convert
        each batch independently, concatenate the points and classify
        once -- every operation is row-independent, so the result is
        bitwise-identical to converting per batch.
        """
        if isinstance(responses, np.ndarray):
            return self.signatures_from_db(responses)
        mapper = self.trajectories.mapper
        golden = self.golden if mapper.relative_to_golden else None
        if mapper.relative_to_golden and golden is None:
            raise DiagnosisError(
                "batch diagnoser needs the golden response to map "
                "measured responses; pass golden= at construction")
        return np.vstack([mapper.signature(response, golden)
                          for response in responses])

    # ------------------------------------------------------------------
    # Batched classification
    # ------------------------------------------------------------------
    def _check_points(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        if points.ndim != 2 or points.shape[1] != self.dimension:
            raise DiagnosisError(
                f"expected an (N, {self.dimension}) point batch, got "
                f"shape {points.shape}")
        return points

    def _project(self, points: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                            np.ndarray, np.ndarray]:
        """Vectorised core: project N points onto all S segments.

        Returns ``(distances, t_raw, has_perpendicular, winners,
        candidates)`` with shapes (N, S), (N, S), (N,), (N,), (N, S);
        ``candidates`` is the interior-preferred masked distance array
        the winner was picked from (non-candidate segments at ``inf``).
        """
        # The same reductions as project_point_onto_segments, batched
        # over N (bitwise-identical per row).
        diff = points[:, None, :] - self._starts[None, :, :]   # (N, S, D)
        t_raw = np.sum(diff * self._direction[None, :, :],
                       axis=2) / self._safe[None, :]
        t_raw = np.where(self._length_sq[None, :] > _EPS, t_raw, 0.0)
        interior = (t_raw > 0.0) & (t_raw < 1.0) & \
            (self._length_sq[None, :] > _EPS)
        t_clamped = np.clip(t_raw, 0.0, 1.0)
        closest = self._starts[None, :, :] + \
            t_clamped[:, :, None] * self._direction[None, :, :]
        distances = np.linalg.norm(points[:, None, :] - closest, axis=2)

        # Paper rule, batched: rows with any interior foot restrict the
        # argmin to interior segments; the rest fall back to endpoint
        # distance over all segments.
        has_perpendicular = np.any(interior, axis=1)           # (N,)
        masked = np.where(interior, distances, np.inf)
        candidates = np.where(has_perpendicular[:, None], masked,
                              distances)
        winners = np.argmin(candidates, axis=1)                # (N,)
        return distances, t_raw, has_perpendicular, winners, candidates

    def classify_points(self, points: np.ndarray) -> List[Diagnosis]:
        """Diagnose an (N, D) batch of signature-space points."""
        points = self._check_points(points)
        distances, t_raw, has_perpendicular, winners, candidates = \
            self._project(points)

        rows = np.arange(points.shape[0])
        t_win = np.clip(t_raw[rows, winners], 0.0, 1.0)
        dev0 = self._seg_dev0[winners]
        deviations = dev0 + t_win * (self._seg_dev1[winners] - dev0)
        win_distances = distances[rows, winners]
        owners = self._owners[winners]

        # Best candidate distance per component: exact minima over the
        # contiguous owner groups of the same masked array the winner
        # was chosen from, mirroring the scalar classifier's ranking
        # (non-candidate components rank at inf, margins stay >= 0).
        per_component = np.minimum.reduceat(
            candidates, self._group_offsets, axis=1)           # (N, T)

        diagnoses: List[Diagnosis] = []
        for row in rows:
            order = np.argsort(per_component[row], kind="stable")
            ranking = tuple((self._components[index],
                             float(per_component[row, index]))
                            for index in order)
            component = self._components[int(owners[row])]
            margin = TrajectoryClassifier._margin(ranking, component)
            diagnoses.append(Diagnosis(
                component=component,
                estimated_deviation=float(deviations[row]),
                distance=float(win_distances[row]),
                perpendicular=bool(has_perpendicular[row]),
                margin=margin,
                point=tuple(float(x) for x in points[row]),
                ranking=ranking,
            ))
        return diagnoses

    def classify_responses(self, responses: ResponseBatch
                           ) -> List[Diagnosis]:
        """Diagnose a batch of measured responses.

        Accepts either a sequence of :class:`FrequencyResponse` objects
        or an (N, F) matrix of dB magnitudes sampled at the mapper's
        test frequencies (see :meth:`signatures_from_db`).
        """
        return self.classify_points(self.signatures(responses))

    def components_for(self, points: np.ndarray) -> Tuple[str, ...]:
        """Winning component labels only -- the fastest batched query.

        Skips deviation estimation, ranking and margin computation: one
        projection, one argmin, one gather. Labels match
        :meth:`classify_points` exactly.
        """
        points = self._check_points(points)
        _, _, _, winners, _ = self._project(points)
        owners = self._owners[winners]
        return tuple(self._components[int(owner)] for owner in owners)
