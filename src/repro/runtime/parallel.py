"""Parallel fault-dictionary builds.

Faults are independent, so a dictionary build is embarrassingly
parallel. This module shards the fault universe into *variant blocks* --
contiguous chunks of delta-stamped variants -- over a
``concurrent.futures`` pool (process or thread). The build context
(circuit, output node, frequency grid, engine kind) ships **once per
worker** through the pool initializer; each task payload is just its
fault slice. Every worker stamps the nominal circuit once with its own
engine and solves whole blocks batched, then the parent reassembles the
entries in universe order. The result is *identical* to the serial
build (same delta-stamps, same per-matrix LAPACK solves, deterministic
ordering regardless of completion order).

The pipeline reaches this through ``PipelineConfig.n_workers`` /
``PipelineConfig.executor``; it can also be called directly.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.netlist import Circuit
from ..errors import DictionaryError
from ..faults.dictionary import DictionaryEntry, FaultDictionary
from ..faults.models import Fault
from ..faults.universe import FaultUniverse
from ..sim.ac import FrequencyResponse
from ..sim.engine import SimulationEngine, VariantSpec, make_engine
from . import shm

__all__ = ["build_dictionary_parallel"]

_EXECUTOR_KINDS = ("process", "thread")


def _simulate_with(engine: SimulationEngine, circuit: Circuit,
                   faults: Sequence[Fault], output_node: str,
                   freqs: np.ndarray, input_source: Optional[str]
                   ) -> List[FrequencyResponse]:
    """Solve one variant block on an already-stamped engine. Returns
    the same responses the serial build produces."""
    variants = tuple(
        VariantSpec((fault.replacement_component(circuit),),
                    name=f"{circuit.name}#{fault.label}")
        for fault in faults)
    block = engine.transfer_block(output_node, freqs, variants,
                                  input_source)
    return [block.response(index) for index in range(len(faults))]


#: Per-process build context installed by the pool initializer; the
#: engine is stamped once per worker and reused across every block the
#: worker receives.
_BUILD_WORKER: Dict[str, object] = {}


def _init_build_worker(circuit: Circuit, output_node: str,
                       freqs: np.ndarray, input_source: Optional[str],
                       engine_kind: object) -> None:
    _BUILD_WORKER["circuit"] = circuit
    _BUILD_WORKER["output_node"] = output_node
    _BUILD_WORKER["freqs"] = freqs
    _BUILD_WORKER["input_source"] = input_source
    _BUILD_WORKER["engine"] = make_engine(circuit, engine_kind)


def _simulate_faults(faults: Sequence[Fault]) -> List[FrequencyResponse]:
    """Process-pool task: only the fault slice rides the pickle."""
    engine = _BUILD_WORKER.get("engine")
    if engine is None:
        raise DictionaryError(
            "dictionary pool worker used without its initializer")
    return _simulate_with(engine, _BUILD_WORKER["circuit"], faults,
                          _BUILD_WORKER["output_node"],
                          _BUILD_WORKER["freqs"],
                          _BUILD_WORKER["input_source"])


class _ThreadBlockRunner:
    """Thread-pool variant of the worker context: per-thread engines
    (stamped once per thread, no cross-thread engine sharing), no
    module-global state so concurrent builds cannot interfere."""

    def __init__(self, circuit: Circuit, output_node: str,
                 freqs: np.ndarray, input_source: Optional[str],
                 engine_kind: object) -> None:
        self.circuit = circuit
        self.output_node = output_node
        self.freqs = freqs
        self.input_source = input_source
        self.engine_kind = engine_kind
        self._local = threading.local()

    def __call__(self, faults: Sequence[Fault]
                 ) -> List[FrequencyResponse]:
        engine = getattr(self._local, "engine", None)
        if engine is None:
            engine = make_engine(self.circuit, self.engine_kind)
            self._local.engine = engine
        return _simulate_with(engine, self.circuit, faults,
                              self.output_node, self.freqs,
                              self.input_source)


def build_dictionary_parallel(universe: FaultUniverse, output_node: str,
                              freqs_hz: np.ndarray,
                              input_source: Optional[str] = None,
                              n_workers: int = 0,
                              executor: str = "process",
                              chunk_size: Optional[int] = None,
                              engine_kind: object = "batched"
                              ) -> FaultDictionary:
    """Build a fault dictionary across a worker pool.

    ``n_workers`` of 0 or 1 falls back to the serial
    :meth:`FaultDictionary.build`. The result is equal to the serial
    build entry-for-entry (asserted in the test suite): workers
    delta-stamp the exact same variants and the blocks are reassembled
    in submission order. ``engine_kind`` selects the per-worker engine:
    a kind string (``"batched"`` default, ``"scalar"`` reference) or a
    full :class:`~repro.sim.engine.EngineSpec` carrying knobs.
    """
    if n_workers <= 1:
        return FaultDictionary.build(
            universe, output_node, freqs_hz, input_source=input_source,
            engine=make_engine(universe.circuit, engine_kind))
    if executor not in _EXECUTOR_KINDS:
        raise DictionaryError(
            f"executor must be one of {sorted(_EXECUTOR_KINDS)}, "
            f"got {executor!r}")

    FaultDictionary.simulations_run += 1
    freqs = np.asarray(freqs_hz, dtype=float)
    circuit = universe.circuit
    golden = make_engine(circuit, engine_kind).transfer_block(
        output_node, freqs, (VariantSpec(name=circuit.name),),
        input_source).response(0)

    faults: Tuple[Fault, ...] = universe.faults
    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(faults) / n_workers))
    chunks = [faults[index:index + chunk_size]
              for index in range(0, len(faults), chunk_size)]

    if executor == "process":
        pool = ProcessPoolExecutor(
            max_workers=n_workers, initializer=_init_build_worker,
            initargs=(circuit, output_node, freqs, input_source,
                      engine_kind))
        task = _simulate_faults
    else:
        pool = ThreadPoolExecutor(max_workers=n_workers,
                                  thread_name_prefix="dict-build")
        task = _ThreadBlockRunner(circuit, output_node, freqs,
                                  input_source, engine_kind)
    with pool:
        futures = [pool.submit(task, chunk) for chunk in chunks]
        shm.record_pool_tasks("dictionary", len(chunks))
        # Collect in submission order, not completion order: entry
        # ordering must match the universe exactly.
        chunk_responses = [future.result() for future in futures]

    entries = [DictionaryEntry(fault, response)
               for chunk, responses in zip(chunks, chunk_responses)
               for fault, response in zip(chunk, responses)]
    return FaultDictionary(circuit.name, output_node, freqs, golden,
                           entries)
