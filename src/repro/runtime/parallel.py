"""Parallel fault-dictionary builds.

``FaultDictionary.build`` walks the fault universe serially: one MNA
sweep per fault. Faults are independent, so the build is embarrassingly
parallel -- this module chunks the universe over a
``concurrent.futures`` pool (process or thread) and reassembles the
entries in universe order, producing a dictionary *identical* to the
serial build (same floating-point operations per fault, deterministic
ordering regardless of completion order).

The pipeline reaches this through ``PipelineConfig.n_workers`` /
``PipelineConfig.executor``; it can also be called directly.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.netlist import Circuit
from ..errors import DictionaryError
from ..faults.dictionary import DictionaryEntry, FaultDictionary
from ..faults.models import Fault
from ..faults.universe import FaultUniverse
from ..sim.ac import ACAnalysis, FrequencyResponse

__all__ = ["build_dictionary_parallel"]

_EXECUTORS = {"process": ProcessPoolExecutor, "thread": ThreadPoolExecutor}


def _simulate_chunk(circuit: Circuit, faults: Sequence[Fault],
                    output_node: str, freqs: np.ndarray,
                    input_source: Optional[str]
                    ) -> List[FrequencyResponse]:
    """Simulate one chunk of faults; top-level so process pools can
    pickle it. Returns the same responses the serial build produces."""
    return [ACAnalysis(fault.apply(circuit)).transfer(
                output_node, freqs, input_source)
            for fault in faults]


def build_dictionary_parallel(universe: FaultUniverse, output_node: str,
                              freqs_hz: np.ndarray,
                              input_source: Optional[str] = None,
                              n_workers: int = 0,
                              executor: str = "process",
                              chunk_size: Optional[int] = None
                              ) -> FaultDictionary:
    """Build a fault dictionary across a worker pool.

    ``n_workers`` of 0 or 1 falls back to the serial
    :meth:`FaultDictionary.build`. The result is equal to the serial
    build entry-for-entry (asserted in the test suite): workers run the
    exact same per-fault simulation and the chunks are reassembled in
    universe order.
    """
    if n_workers <= 1:
        return FaultDictionary.build(universe, output_node, freqs_hz,
                                     input_source=input_source)
    try:
        pool_cls = _EXECUTORS[executor]
    except KeyError:
        raise DictionaryError(
            f"executor must be one of {sorted(_EXECUTORS)}, "
            f"got {executor!r}") from None

    FaultDictionary.simulations_run += 1
    freqs = np.asarray(freqs_hz, dtype=float)
    circuit = universe.circuit
    golden = ACAnalysis(circuit).transfer(output_node, freqs, input_source)

    faults: Tuple[Fault, ...] = universe.faults
    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(faults) / n_workers))
    chunks = [faults[index:index + chunk_size]
              for index in range(0, len(faults), chunk_size)]

    with pool_cls(max_workers=n_workers) as pool:
        futures = [pool.submit(_simulate_chunk, circuit, chunk,
                               output_node, freqs, input_source)
                   for chunk in chunks]
        # Collect in submission order, not completion order: entry
        # ordering must match the universe exactly.
        chunk_responses = [future.result() for future in futures]

    entries = [DictionaryEntry(fault, response)
               for chunk, responses in zip(chunks, chunk_responses)
               for fault, response in zip(chunk, responses)]
    return FaultDictionary(circuit.name, output_node, freqs, golden,
                           entries)
