"""Parallel fault-dictionary builds.

Faults are independent, so a dictionary build is embarrassingly
parallel. This module shards the fault universe into *variant blocks* --
contiguous chunks of delta-stamped variants -- over a
``concurrent.futures`` pool (process or thread). Each worker stamps the
nominal circuit once with its own
:class:`~repro.sim.engine.BatchedMnaEngine` and solves its whole block
batched, then the parent reassembles the entries in universe order. The
result is *identical* to the serial build (same delta-stamps, same
per-matrix LAPACK solves, deterministic ordering regardless of
completion order).

The pipeline reaches this through ``PipelineConfig.n_workers`` /
``PipelineConfig.executor``; it can also be called directly.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.netlist import Circuit
from ..errors import DictionaryError
from ..faults.dictionary import DictionaryEntry, FaultDictionary
from ..faults.models import Fault
from ..faults.universe import FaultUniverse
from ..sim.ac import FrequencyResponse
from ..sim.engine import VariantSpec, make_engine

__all__ = ["build_dictionary_parallel"]

_EXECUTORS = {"process": ProcessPoolExecutor, "thread": ThreadPoolExecutor}


def _simulate_block(circuit: Circuit, faults: Sequence[Fault],
                    output_node: str, freqs: np.ndarray,
                    input_source: Optional[str],
                    engine_kind: str) -> List[FrequencyResponse]:
    """Solve one variant block; top-level so process pools can pickle
    it. Returns the same responses the serial build produces."""
    engine = make_engine(circuit, engine_kind)
    variants = tuple(
        VariantSpec((fault.replacement_component(circuit),),
                    name=f"{circuit.name}#{fault.label}")
        for fault in faults)
    block = engine.transfer_block(output_node, freqs, variants,
                                  input_source)
    return [block.response(index) for index in range(len(faults))]


def build_dictionary_parallel(universe: FaultUniverse, output_node: str,
                              freqs_hz: np.ndarray,
                              input_source: Optional[str] = None,
                              n_workers: int = 0,
                              executor: str = "process",
                              chunk_size: Optional[int] = None,
                              engine_kind: str = "batched"
                              ) -> FaultDictionary:
    """Build a fault dictionary across a worker pool.

    ``n_workers`` of 0 or 1 falls back to the serial
    :meth:`FaultDictionary.build`. The result is equal to the serial
    build entry-for-entry (asserted in the test suite): workers
    delta-stamp the exact same variants and the blocks are reassembled
    in universe order. ``engine_kind`` selects the per-worker engine
    (``"batched"`` default, ``"scalar"`` reference).
    """
    if n_workers <= 1:
        return FaultDictionary.build(
            universe, output_node, freqs_hz, input_source=input_source,
            engine=make_engine(universe.circuit, engine_kind))
    try:
        pool_cls = _EXECUTORS[executor]
    except KeyError:
        raise DictionaryError(
            f"executor must be one of {sorted(_EXECUTORS)}, "
            f"got {executor!r}") from None

    FaultDictionary.simulations_run += 1
    freqs = np.asarray(freqs_hz, dtype=float)
    circuit = universe.circuit
    golden = make_engine(circuit, engine_kind).transfer_block(
        output_node, freqs, (VariantSpec(name=circuit.name),),
        input_source).response(0)

    faults: Tuple[Fault, ...] = universe.faults
    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(faults) / n_workers))
    chunks = [faults[index:index + chunk_size]
              for index in range(0, len(faults), chunk_size)]

    with pool_cls(max_workers=n_workers) as pool:
        futures = [pool.submit(_simulate_block, circuit, chunk,
                               output_node, freqs, input_source,
                               engine_kind)
                   for chunk in chunks]
        # Collect in submission order, not completion order: entry
        # ordering must match the universe exactly.
        chunk_responses = [future.result() for future in futures]

    entries = [DictionaryEntry(fault, response)
               for chunk, responses in zip(chunks, chunk_responses)
               for fault, response in zip(chunk, responses)]
    return FaultDictionary(circuit.name, output_node, freqs, golden,
                           entries)
