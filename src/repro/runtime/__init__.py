"""repro.runtime: the serving-shaped execution layer.

Turns the paper reproduction into an engine fit for heavy traffic:

* :mod:`repro.runtime.batch` -- :class:`BatchDiagnoser`, vectorised
  many-at-once nearest-segment classification (bitwise-identical to the
  scalar :class:`~repro.diagnosis.classifier.TrajectoryClassifier`);
* :mod:`repro.runtime.parallel` -- fault-dictionary builds fanned out
  over a ``concurrent.futures`` pool, deterministic entry order;
* :mod:`repro.runtime.shm` -- zero-copy shared memory for process
  pools: :class:`SharedArray` / :class:`SharedSurface` (pickle-by-
  handle views over ``multiprocessing.shared_memory``, deterministic
  create/attach/unlink lifecycle, thread fallback when shm is
  unavailable) plus the ``repro_pool_*`` telemetry families;
* :mod:`repro.runtime.backends` -- pluggable artifact storage:
  :class:`LocalDirBackend` (on-disk, byte-compatible with pre-backend
  store roots), :class:`InMemoryBackend`, and :class:`ShardedBackend`
  (consistent-hash fan-out over child backends via :class:`HashRing`),
  all with ``disk_usage`` accounting and LRU ``prune``;
* :mod:`repro.runtime.store` -- :class:`ArtifactStore`, the
  content-addressed cache of dictionaries, GA results and trajectory
  sets keyed by the canonical problem statement, over any backend;
* :mod:`repro.runtime.service` -- :class:`DiagnosisService`, the warm
  multi-circuit ``submit()``/``submit_many()`` facade with an engine
  LRU and counters;
* :mod:`repro.runtime.server` -- :class:`AsyncDiagnosisService`, the
  awaitable coalescing front (micro-batching window, backpressure),
  plus a stdlib JSON-over-HTTP server (:func:`serve`) with persistent
  connections;
* :mod:`repro.runtime.cluster` -- :class:`ClusterService`, the
  consistent-hash circuit->replica router over in-process or spawned
  worker replicas (health checks, re-route-on-death failover);
* :mod:`repro.runtime.codec` -- the transport-agnostic JSON wire
  format those requests and responses ride on;
* :mod:`repro.runtime.telemetry` -- the stdlib observability spine:
  Prometheus-text metrics registry (``GET /v1/metrics``), trace spans
  with contextvars propagation, request ids, and the profiling bridge
  that turns :mod:`repro.profiling` events into engine/pipeline metric
  families;
* :mod:`repro.runtime.cli` -- the ``repro-serve`` launcher (single
  process or spawned cluster).
"""

from .backends import (ArtifactRecord, HashRing, InMemoryBackend,
                       LocalDirBackend, ShardedBackend, StorageBackend)
from .batch import BatchDiagnoser
from .cluster import (CircuitRouter, ClusterService, HTTPReplica,
                      InProcessReplica, Replica, SpawnedReplica)
from .parallel import build_dictionary_parallel
from .server import AsyncDiagnosisService, DiagnosisHTTPServer, serve
from .shm import SharedArray, SharedSurface, resolve_executor, \
    shm_available
from .service import CircuitStats, DiagnosisService, ServiceStats
from .store import (ArtifactStore, StoreStats, as_store, derive_key,
                    ga_search_key, problem_key, trajectory_key)
from .telemetry import (REGISTRY, TRACER, Counter, Gauge, Histogram,
                        MetricsRegistry, ProfilingCollector, Span,
                        Tracer, current_request_id, new_request_id,
                        parse_exposition, render_registries)

__all__ = [
    "BatchDiagnoser",
    "build_dictionary_parallel",
    "ArtifactStore",
    "StoreStats",
    "as_store",
    "problem_key",
    "derive_key",
    "ga_search_key",
    "trajectory_key",
    "ArtifactRecord",
    "StorageBackend",
    "LocalDirBackend",
    "InMemoryBackend",
    "ShardedBackend",
    "HashRing",
    "DiagnosisService",
    "CircuitStats",
    "ServiceStats",
    "AsyncDiagnosisService",
    "DiagnosisHTTPServer",
    "serve",
    "CircuitRouter",
    "ClusterService",
    "Replica",
    "InProcessReplica",
    "HTTPReplica",
    "SpawnedReplica",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "REGISTRY",
    "render_registries",
    "parse_exposition",
    "Tracer",
    "TRACER",
    "Span",
    "ProfilingCollector",
    "new_request_id",
    "current_request_id",
    "SharedArray",
    "SharedSurface",
    "shm_available",
    "resolve_executor",
]
