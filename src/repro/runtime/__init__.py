"""repro.runtime: the serving-shaped execution layer.

Turns the paper reproduction into an engine fit for heavy traffic:

* :mod:`repro.runtime.batch` -- :class:`BatchDiagnoser`, vectorised
  many-at-once nearest-segment classification (bitwise-identical to the
  scalar :class:`~repro.diagnosis.classifier.TrajectoryClassifier`);
* :mod:`repro.runtime.parallel` -- fault-dictionary builds fanned out
  over a ``concurrent.futures`` pool, deterministic entry order;
* :mod:`repro.runtime.store` -- :class:`ArtifactStore`, a
  content-addressed on-disk cache of dictionaries, GA results and
  trajectory sets keyed by the canonical problem statement;
* :mod:`repro.runtime.service` -- :class:`DiagnosisService`, the warm
  multi-circuit ``submit()`` facade with an engine LRU and counters;
* :mod:`repro.runtime.server` -- :class:`AsyncDiagnosisService`, the
  awaitable coalescing front (micro-batching window, backpressure),
  plus a stdlib JSON-over-HTTP server (:func:`serve`);
* :mod:`repro.runtime.codec` -- the transport-agnostic JSON wire
  format those requests and responses ride on.
"""

from .batch import BatchDiagnoser
from .parallel import build_dictionary_parallel
from .server import AsyncDiagnosisService, DiagnosisHTTPServer, serve
from .service import CircuitStats, DiagnosisService, ServiceStats
from .store import (ArtifactStore, StoreStats, derive_key,
                    ga_search_key, problem_key, trajectory_key)

__all__ = [
    "BatchDiagnoser",
    "build_dictionary_parallel",
    "ArtifactStore",
    "StoreStats",
    "problem_key",
    "derive_key",
    "ga_search_key",
    "trajectory_key",
    "DiagnosisService",
    "CircuitStats",
    "ServiceStats",
    "AsyncDiagnosisService",
    "DiagnosisHTTPServer",
    "serve",
]
