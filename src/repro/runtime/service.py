"""Serving facade: warmed diagnosis engines behind one submit() seam.

:class:`DiagnosisService` is the shape the async/HTTP layer
(:mod:`repro.runtime.server`) plugs into: it owns an LRU cache of warmed
per-circuit engines (an ATPG run plus its batch diagnoser), loads
artifacts through an optional :class:`~repro.runtime.store.ArtifactStore`
so cold starts skip simulation, and answers
``submit(circuit_name, responses)`` requests with batched classification
while keeping request/latency counters.

Thread-safety contract:

* engine-cache mutation holds the service lock; warm-up builds run
  outside it behind a *per-circuit* build lock, so a cold circuit is
  built exactly once no matter how many threads race on it, and other
  circuits' requests never stall behind the build;
* every :class:`ServiceStats` mutation goes through ``record_*`` methods
  that hold the stats object's own lock, so counters stay exact under
  concurrent ``submit`` from any number of threads;
* classification itself runs with no lock held (the batch diagnoser is
  read-only after construction).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque

import numpy as np
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Deque, Dict, List, Optional, Sequence, Tuple,
                    Union)

from ..circuits.library import BENCHMARK_CIRCUITS, CircuitInfo, \
    get_benchmark
from ..core.atpg import ATPGResult, FaultTrajectoryATPG
from ..core.config import PipelineConfig
from ..diagnosis.classifier import Diagnosis
from ..diagnosis.posterior import (PosteriorConfig, PosteriorDiagnoser,
                                   PosteriorDiagnosis)
from ..errors import ServiceError
from . import telemetry
from .backends import StorageBackend
from .batch import BatchDiagnoser, ResponseBatch
from .store import ArtifactStore, as_store

#: Anything ``DiagnosisService(store=...)`` accepts.
StoreLike = Union[ArtifactStore, StorageBackend, str, Path, None]

__all__ = ["DiagnosisService", "CircuitStats", "ServiceStats"]

#: How many recent request latencies the percentile reservoir keeps.
LATENCY_WINDOW = 4096


def _batch_bucket(n_rows: int) -> int:
    """Histogram bucket for a coalesced batch: rows rounded up to the
    next power of two (1, 2, 4, 8, ...)."""
    if n_rows <= 1:
        return 1
    return 1 << (n_rows - 1).bit_length()


@dataclass
class CircuitStats:
    """Counters for one named circuit."""

    requests: int = 0
    responses_diagnosed: int = 0
    total_latency_seconds: float = 0.0
    warm_loads: int = 0

    @property
    def mean_latency_seconds(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.total_latency_seconds / self.requests

    def as_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "responses_diagnosed": self.responses_diagnosed,
            "total_latency_seconds": self.total_latency_seconds,
            "mean_latency_seconds": self.mean_latency_seconds,
            "warm_loads": self.warm_loads,
        }


@dataclass
class ServiceStats:
    """Aggregate counters plus the per-circuit breakdown.

    All mutation goes through the ``record_*`` / ``observe_*`` methods,
    which hold an internal lock -- callers may hammer one stats object
    from any number of threads and every counter stays exact. Plain
    attribute reads are lock-free (ints/floats are torn-write safe under
    the GIL); use :meth:`snapshot` for a consistent multi-field view.

    Every record also lands in the attached
    :class:`~repro.runtime.telemetry.MetricsRegistry` (the Prometheus
    view served by ``GET /v1/metrics``): the ``record_*`` seam writes
    both books, so the JSON :meth:`snapshot` surface stays exactly as
    it always was while the registry carries labelled counters, the
    request-latency histogram and the live/peak queue-depth gauges.
    Each stats object gets its own registry by default so concurrent
    services never share counters.
    """

    requests: int = 0
    responses_diagnosed: int = 0
    total_latency_seconds: float = 0.0
    evictions: int = 0
    #: Number of coalesced classify calls the async front issued.
    coalesced_batches: int = 0
    #: Client requests that were answered from a coalesced batch.
    coalesced_requests: int = 0
    #: Requests refused by backpressure (``overflow="reject"``).
    rejections: int = 0
    #: Completed posterior (probabilistic) diagnosis requests.
    posterior_requests: int = 0
    #: Response rows answered with posterior probabilities.
    posterior_rows: int = 0
    #: Posterior diagnoser builds (Monte-Carlo sweeps).
    posterior_builds: int = 0
    #: Engine variants simulated across all posterior builds.
    posterior_samples: int = 0
    #: Highest queued-request count the async front ever observed.
    peak_queue_depth: int = 0
    #: Coalesced batch sizes (rows), bucketed to powers of two.
    batch_size_histogram: Dict[int, int] = field(default_factory=dict)
    #: Simulation engine kind the owning service warms circuits with
    #: (``PipelineConfig.engine``); surfaced through ``/v1/stats``.
    engine_kind: str = "batched"
    per_circuit: Dict[str, CircuitStats] = field(default_factory=dict)
    registry: Optional[telemetry.MetricsRegistry] = field(
        default=None, repr=False, compare=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)
    _latencies: Deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW),
        repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.registry is None:
            self.registry = telemetry.MetricsRegistry()
        reg = self.registry
        self._m_requests = reg.counter(
            "repro_service_requests_total",
            "Completed diagnosis requests.", ("circuit",))
        self._m_responses = reg.counter(
            "repro_service_responses_total",
            "Response rows diagnosed.", ("circuit",))
        self._m_warm_loads = reg.counter(
            "repro_service_warm_loads_total",
            "Engine warm-ups (pipeline builds or store loads).",
            ("circuit",))
        self._m_latency = reg.histogram(
            "repro_service_request_latency_seconds",
            "End-to-end request latency inside the service.")
        self._m_evictions = reg.counter(
            "repro_service_engine_evictions_total",
            "Warm engines evicted by the LRU.")
        self._m_coalesced_batches = reg.counter(
            "repro_service_coalesced_batches_total",
            "Coalesced classify calls issued by the async front.")
        self._m_coalesced_requests = reg.counter(
            "repro_service_coalesced_requests_total",
            "Client requests answered from a coalesced batch.")
        self._m_rejections = reg.counter(
            "repro_service_rejections_total",
            "Requests refused by backpressure.")
        self._m_batch_rows = reg.histogram(
            "repro_service_coalesce_batch_rows",
            "Rows per coalesced classify call.",
            buckets=telemetry.POWER_OF_TWO_BUCKETS)
        self._m_queue_depth = reg.gauge(
            "repro_service_queue_depth",
            "Requests currently queued in the async front.")
        self._m_peak_queue_depth = reg.gauge(
            "repro_service_peak_queue_depth",
            "Highest queued-request count ever observed.")
        self._m_posterior_requests = reg.counter(
            "repro_posterior_requests_total",
            "Completed probabilistic-diagnosis requests.", ("circuit",))
        self._m_posterior_rows = reg.counter(
            "repro_posterior_rows_total",
            "Response rows answered with posterior probabilities.",
            ("circuit",))
        self._m_posterior_samples = reg.counter(
            "repro_posterior_samples_total",
            "Monte-Carlo engine variants simulated by posterior builds.",
            ("circuit",))
        self._m_posterior_build = reg.histogram(
            "repro_posterior_build_seconds",
            "Posterior diagnoser build time (Monte-Carlo sweep).")
        self._m_posterior_latency = reg.histogram(
            "repro_posterior_request_seconds",
            "End-to-end posterior request latency inside the service.")
        self._m_posterior_entropy = reg.histogram(
            "repro_posterior_entropy_bits",
            "Posterior entropy per diagnosed row (bits).",
            buckets=(0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 1.5,
                     2.0, 3.0, 4.0, 6.0))

    def for_circuit(self, name: str) -> CircuitStats:
        return self.per_circuit.setdefault(name, CircuitStats())

    # ------------------------------------------------------------------
    # Recording (thread-safe)
    # ------------------------------------------------------------------
    def _record_one(self, circuit_name: str, n_responses: int,
                    latency_seconds: float) -> None:
        per = self.for_circuit(circuit_name)
        for scope in (self, per):
            scope.requests += 1
            scope.responses_diagnosed += n_responses
            scope.total_latency_seconds += latency_seconds
        self._latencies.append(latency_seconds)
        self._m_requests.labels(circuit_name).inc()
        self._m_responses.labels(circuit_name).inc(n_responses)
        self._m_latency.observe(latency_seconds)

    def record_request(self, circuit_name: str, n_responses: int,
                       latency_seconds: float) -> None:
        """Record one completed ``submit`` request."""
        with self._lock:
            self._record_one(circuit_name, n_responses, latency_seconds)

    def record_coalesced(self, circuit_name: str,
                         request_latencies: Sequence[Tuple[int, float]],
                         n_rows: int) -> None:
        """Record one coalesced flush answering several requests.

        ``request_latencies`` holds ``(n_responses, latency_seconds)``
        per client request; ``n_rows`` is the size of the single
        classify call that answered them all.
        """
        with self._lock:
            self.coalesced_batches += 1
            self.coalesced_requests += len(request_latencies)
            bucket = _batch_bucket(n_rows)
            self.batch_size_histogram[bucket] = \
                self.batch_size_histogram.get(bucket, 0) + 1
            self._m_coalesced_batches.inc()
            self._m_coalesced_requests.inc(len(request_latencies))
            self._m_batch_rows.observe(n_rows)
            for n_responses, latency in request_latencies:
                self._record_one(circuit_name, n_responses, latency)

    def record_posterior(self, circuit_name: str,
                         request_latencies: Sequence[Tuple[int, float]],
                         entropies: Sequence[float]) -> None:
        """Record posterior requests answered by one diagnose call.

        ``request_latencies`` holds ``(n_rows, latency_seconds)`` per
        client request; ``entropies`` the per-row posterior entropies
        (bits) of the whole call.
        """
        with self._lock:
            for n_rows, latency in request_latencies:
                self.posterior_requests += 1
                self.posterior_rows += n_rows
                self._m_posterior_requests.labels(circuit_name).inc()
                self._m_posterior_rows.labels(circuit_name).inc(n_rows)
                self._m_posterior_latency.observe(latency)
            for entropy in entropies:
                self._m_posterior_entropy.observe(entropy)

    def record_posterior_build(self, circuit_name: str,
                               n_samples: int,
                               build_seconds: float) -> None:
        """Record one posterior diagnoser build (Monte-Carlo sweep)."""
        with self._lock:
            self.posterior_builds += 1
            self.posterior_samples += n_samples
            self._m_posterior_samples.labels(circuit_name).inc(n_samples)
            self._m_posterior_build.observe(build_seconds)

    def record_warm_load(self, circuit_name: str) -> None:
        with self._lock:
            self.for_circuit(circuit_name).warm_loads += 1
            self._m_warm_loads.labels(circuit_name).inc()

    def record_eviction(self, count: int = 1) -> None:
        with self._lock:
            self.evictions += count
            self._m_evictions.inc(count)

    def record_rejection(self) -> None:
        with self._lock:
            self.rejections += 1
            self._m_rejections.inc()

    def gauge_queue_depth(self, depth: int) -> None:
        """Update only the live queue-depth gauge (no peak lock)."""
        self._m_queue_depth.set(depth)

    def observe_queue_depth(self, depth: int) -> None:
        """Track the live queue depth (gauge) and its high watermark."""
        self._m_queue_depth.set(depth)
        with self._lock:
            if depth > self.peak_queue_depth:
                self.peak_queue_depth = depth
                self._m_peak_queue_depth.set(depth)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def latency_percentile(self, quantile: float) -> float:
        """Latency percentile (seconds) over the recent-request
        reservoir (last ``LATENCY_WINDOW`` requests); 0.0 when empty."""
        if not 0.0 <= quantile <= 1.0:
            raise ServiceError("quantile must be within [0, 1]")
        with self._lock:
            window = sorted(self._latencies)
        if not window:
            return 0.0
        index = min(len(window) - 1,
                    max(0, round(quantile * (len(window) - 1))))
        return window[index]

    @property
    def latency_p50_seconds(self) -> float:
        return self.latency_percentile(0.50)

    @property
    def latency_p95_seconds(self) -> float:
        return self.latency_percentile(0.95)

    def snapshot(self) -> Dict[str, object]:
        """A consistent, JSON-ready view of every counter."""
        with self._lock:
            window = sorted(self._latencies)
            snap: Dict[str, object] = {
                "engine_kind": self.engine_kind,
                "requests": self.requests,
                "responses_diagnosed": self.responses_diagnosed,
                "total_latency_seconds": self.total_latency_seconds,
                "evictions": self.evictions,
                "coalesced_batches": self.coalesced_batches,
                "coalesced_requests": self.coalesced_requests,
                "rejections": self.rejections,
                "posterior_requests": self.posterior_requests,
                "posterior_rows": self.posterior_rows,
                "posterior_builds": self.posterior_builds,
                "posterior_samples": self.posterior_samples,
                "peak_queue_depth": self.peak_queue_depth,
                "batch_size_histogram": dict(sorted(
                    self.batch_size_histogram.items())),
                "per_circuit": {name: stats.as_dict()
                                for name, stats
                                in self.per_circuit.items()},
            }
        for label, quantile in (("latency_p50_seconds", 0.50),
                                ("latency_p95_seconds", 0.95)):
            if window:
                index = min(len(window) - 1,
                            max(0, round(quantile * (len(window) - 1))))
                snap[label] = window[index]
            else:
                snap[label] = 0.0
        return snap


@dataclass
class _Engine:
    """One warmed circuit: the pipeline result + its batch diagnoser.

    ``posterior`` is the lazily built probabilistic tier (None until the
    first posterior request; guarded by the circuit's build lock).
    """

    result: ATPGResult
    diagnoser: BatchDiagnoser
    posterior: Optional[PosteriorDiagnoser] = None


class DiagnosisService:
    """Multi-circuit diagnosis frontend with an engine LRU.

    Parameters
    ----------
    config:
        Pipeline configuration used to warm engines (defaults to
        :meth:`PipelineConfig.paper`).
    store:
        Optional artifact store; warmed engines then load cached
        dictionaries/GA results instead of re-simulating. Accepts an
        :class:`~repro.runtime.store.ArtifactStore`, a bare
        :class:`~repro.runtime.backends.StorageBackend` (in-memory,
        sharded, ...) or a local store-root path.
    max_engines:
        LRU capacity: the least recently used engine is evicted when a
        warm-up would exceed it.
    seed:
        GA seed used for every warm-up (per-circuit determinism).
    registry:
        Metrics registry backing this service's :class:`ServiceStats`;
        defaults to a fresh one per service (see
        :meth:`metrics_text`).
    posterior:
        Tolerance model / sampling knobs for the probabilistic tier
        (:meth:`diagnose_posterior`). Defaults to
        ``PosteriorConfig(seed=seed)`` so replicas sharing a GA seed
        also share their Monte-Carlo worlds.
    """

    def __init__(self, config: Optional[PipelineConfig] = None,
                 store: StoreLike = None,
                 max_engines: int = 4, seed: int = 0,
                 registry: Optional[telemetry.MetricsRegistry] = None,
                 posterior: Optional[PosteriorConfig] = None,
                 ) -> None:
        if max_engines < 1:
            raise ServiceError("max_engines must be >= 1")
        self.config = config or PipelineConfig.paper()
        self.store = as_store(store)
        self.max_engines = max_engines
        self.seed = seed
        # Same GA seed by default so every replica of a cluster samples
        # identical Monte-Carlo worlds (bitwise-reproducible posteriors
        # regardless of which replica answers).
        self.posterior_config = posterior or PosteriorConfig(seed=seed)
        self.stats = ServiceStats(registry=registry,
                                  engine_kind=self.config.engine.kind)
        self._circuits: Dict[str, CircuitInfo] = {}
        self._engines: "OrderedDict[str, _Engine]" = OrderedDict()
        self._lock = threading.Lock()
        # Per-circuit warm-up locks: a cold circuit is built by exactly
        # one thread while racing threads wait on its lock instead of
        # duplicating the (expensive) pipeline run.
        self._build_locks: Dict[str, threading.Lock] = {}

    # ------------------------------------------------------------------
    # Circuit registry
    # ------------------------------------------------------------------
    def register(self, name: str, info: CircuitInfo) -> None:
        """Register a custom circuit under ``name``.

        Benchmark circuits (see ``BENCHMARK_CIRCUITS``) resolve by name
        automatically and need no registration.
        """
        with self._lock:
            self._circuits[name] = info

    def _resolve(self, name: str) -> CircuitInfo:
        with self._lock:
            info = self._circuits.get(name)
        if info is not None:
            return info
        if name in BENCHMARK_CIRCUITS:
            return get_benchmark(name)
        raise ServiceError(
            f"unknown circuit {name!r}; register() it or use one of "
            f"{sorted(BENCHMARK_CIRCUITS)}")

    def has_circuit(self, name: str) -> bool:
        """Whether ``name`` would resolve, without building anything.

        The cheap pre-validation the serving front runs before it
        allocates any per-circuit queue state for a request.
        """
        with self._lock:
            if name in self._circuits:
                return True
        return name in BENCHMARK_CIRCUITS

    def known_circuits(self) -> Dict[str, Tuple[str, ...]]:
        """Circuit names the service can answer for, by origin."""
        with self._lock:
            registered = tuple(sorted(self._circuits))
        return {"registered": registered,
                "benchmarks": tuple(sorted(BENCHMARK_CIRCUITS)),
                "warmed": self.warmed_circuits}

    @property
    def warmed_circuits(self) -> Tuple[str, ...]:
        """Currently warmed circuit names, least recently used first."""
        with self._lock:
            return tuple(self._engines)

    # ------------------------------------------------------------------
    # Warm-up / LRU
    # ------------------------------------------------------------------
    def warm(self, circuit_name: str) -> ATPGResult:
        """Ensure an engine for ``circuit_name`` is loaded; return its
        pipeline result. Runs the ATPG flow (store-accelerated when a
        store is configured) on a cold miss."""
        return self._engine(circuit_name).result

    def _engine_if_warm(self, circuit_name: str) -> Optional[_Engine]:
        """The warmed engine, or None on a cold miss (never builds)."""
        with self._lock:
            engine = self._engines.get(circuit_name)
            if engine is not None:
                self._engines.move_to_end(circuit_name)
            return engine

    def _engine(self, circuit_name: str) -> _Engine:
        engine = self._engine_if_warm(circuit_name)
        if engine is not None:
            return engine
        # Resolve before allocating the build lock so unknown names
        # raise without leaving a permanent _build_locks entry behind.
        info = self._resolve(circuit_name)
        with self._lock:
            build_lock = self._build_locks.setdefault(
                circuit_name, threading.Lock())
        # Build outside the service lock: warming is slow and other
        # circuits' requests must not stall behind it. The per-circuit
        # lock serialises racing warm-ups of the *same* circuit so the
        # pipeline runs exactly once.
        with build_lock:
            engine = self._engine_if_warm(circuit_name)
            if engine is not None:        # built while we waited
                return engine
            with telemetry.TRACER.span("service.warm_build",
                                       circuit=circuit_name):
                result = FaultTrajectoryATPG(info, self.config).run(
                    seed=self.seed, store=self.store)
            engine = _Engine(result=result,
                             diagnoser=result.batch_diagnoser())
            with self._lock:
                self._engines[circuit_name] = engine
                evicted = 0
                while len(self._engines) > self.max_engines:
                    self._engines.popitem(last=False)
                    evicted += 1
            self.stats.record_warm_load(circuit_name)
            if evicted:
                self.stats.record_eviction(evicted)
        return engine

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def submit(self, circuit_name: str,
               responses: ResponseBatch) -> List[Diagnosis]:
        """Diagnose a batch of measured responses for one circuit.

        ``responses`` is a sequence of
        :class:`~repro.sim.ac.FrequencyResponse` objects or an (N, F)
        matrix of dB magnitudes at the circuit's test vector (ascending
        frequency order). Returns one :class:`Diagnosis` per row.
        """
        started = time.perf_counter()
        engine = self._engine(circuit_name)
        diagnoses = engine.diagnoser.classify_responses(responses)
        elapsed = time.perf_counter() - started
        self.stats.record_request(circuit_name, len(diagnoses), elapsed)
        return diagnoses

    def submit_many(self, requests: Sequence[Tuple[str, ResponseBatch]]
                    ) -> List[List[Diagnosis]]:
        """Diagnose a mixed-circuit burst: one classify per circuit.

        ``requests`` is a sequence of ``(circuit_name, responses)``
        pairs (each ``responses`` as in :meth:`submit`). The burst is
        grouped by circuit, every circuit's rows are stacked, and
        exactly one
        :meth:`~repro.runtime.batch.BatchDiagnoser.classify_points`
        call serves all of that circuit's requests -- the batched
        engine's fixed cost is paid once per *circuit*, not once per
        request. Returns one diagnosis list per request, in input
        order, bitwise-identical to per-request :meth:`submit` calls
        (classification is row-independent).

        Errors are not isolated per request: a malformed entry
        (unknown circuit, wrong signature width) raises and fails the
        whole burst. Use the async front's per-request futures when
        callers need isolation.
        """
        started = time.perf_counter()
        if not requests:
            return []
        by_circuit: "OrderedDict[str, List[int]]" = OrderedDict()
        for index, (circuit_name, _) in enumerate(requests):
            by_circuit.setdefault(circuit_name, []).append(index)
        results: List[List[Diagnosis]] = [[] for _ in requests]
        for circuit_name, indices in by_circuit.items():
            diagnoser = self._engine(circuit_name).diagnoser
            points = [diagnoser.signatures(requests[index][1])
                      for index in indices]
            stacked = points[0] if len(points) == 1 \
                else np.concatenate(points, axis=0)
            diagnoses = diagnoser.classify_points(stacked)
            finished = time.perf_counter()
            offset = 0
            records: List[Tuple[int, float]] = []
            for index, part in zip(indices, points):
                n_rows = int(part.shape[0])
                results[index] = diagnoses[offset:offset + n_rows]
                offset += n_rows
                records.append((n_rows, finished - started))
            self.stats.record_coalesced(circuit_name, records,
                                        n_rows=int(stacked.shape[0]))
        return results

    # ------------------------------------------------------------------
    # Probabilistic tier
    # ------------------------------------------------------------------
    def _posterior(self, circuit_name: str
                   ) -> Tuple[_Engine, PosteriorDiagnoser]:
        """The warmed engine plus its (lazily built) posterior tier.

        The Monte-Carlo sweep runs at most once per warmed engine, under
        the same per-circuit build lock as warm-ups, so racing posterior
        requests never duplicate the sampling.
        """
        engine = self._engine(circuit_name)
        if engine.posterior is not None:
            return engine, engine.posterior
        with self._lock:
            build_lock = self._build_locks.setdefault(
                circuit_name, threading.Lock())
        with build_lock:
            if engine.posterior is not None:   # built while we waited
                return engine, engine.posterior
            started = time.perf_counter()
            with telemetry.TRACER.span("service.posterior_build",
                                       circuit=circuit_name):
                posterior = PosteriorDiagnoser.from_atpg(
                    engine.result, self.posterior_config)
            engine.posterior = posterior
            self.stats.record_posterior_build(
                circuit_name, posterior.samples_simulated,
                time.perf_counter() - started)
        return engine, posterior

    def diagnose_posterior(self, circuit_name: str,
                           responses: ResponseBatch
                           ) -> List[PosteriorDiagnosis]:
        """Probabilistic diagnosis of a batch of measured responses.

        ``responses`` is accepted exactly as in :meth:`submit`; each row
        is answered with calibrated posterior fault probabilities and an
        information-gain ranking of candidate measurement frequencies
        instead of a single hard label. The signature transform is
        shared with the hard tier (the engine's batch diagnoser), so
        both tiers see identical points.
        """
        started = time.perf_counter()
        engine, posterior = self._posterior(circuit_name)
        points = engine.diagnoser.signatures(responses)
        results = posterior.diagnose_points(points)
        elapsed = time.perf_counter() - started
        self.stats.record_posterior(
            circuit_name, [(len(results), elapsed)],
            [result.entropy_bits for result in results])
        return results

    def test_vector_hz(self, circuit_name: str) -> Tuple[float, ...]:
        """The warmed test vector for a circuit (what to measure at)."""
        return self._engine(circuit_name).result.test_vector_hz

    def metrics_text(self) -> str:
        """Prometheus text: this service's registry + the process-wide
        engine/pipeline/store families (deduplicated when shared)."""
        if self.stats.registry is telemetry.REGISTRY:
            return telemetry.REGISTRY.render()
        return telemetry.render_registries(self.stats.registry,
                                           telemetry.REGISTRY)
