"""Serving facade: warmed diagnosis engines behind one submit() seam.

:class:`DiagnosisService` is the shape a future HTTP layer plugs into:
it owns an LRU cache of warmed per-circuit engines (an ATPG run plus
its batch diagnoser), loads artifacts through an optional
:class:`~repro.runtime.store.ArtifactStore` so cold starts skip
simulation, and answers ``submit(circuit_name, responses)`` requests
with batched classification while keeping simple request/latency
counters.

Thread-safety: engine-cache mutation and counter updates hold one lock;
classification itself runs outside it (the batch diagnoser is
read-only after construction).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuits.library import BENCHMARK_CIRCUITS, CircuitInfo, \
    get_benchmark
from ..core.atpg import ATPGResult, FaultTrajectoryATPG
from ..core.config import PipelineConfig
from ..diagnosis.classifier import Diagnosis
from ..errors import ServiceError
from .batch import BatchDiagnoser, ResponseBatch
from .store import ArtifactStore

__all__ = ["DiagnosisService", "CircuitStats", "ServiceStats"]


@dataclass
class CircuitStats:
    """Counters for one named circuit."""

    requests: int = 0
    responses_diagnosed: int = 0
    total_latency_seconds: float = 0.0
    warm_loads: int = 0

    @property
    def mean_latency_seconds(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.total_latency_seconds / self.requests


@dataclass
class ServiceStats:
    """Aggregate counters plus the per-circuit breakdown."""

    requests: int = 0
    responses_diagnosed: int = 0
    total_latency_seconds: float = 0.0
    evictions: int = 0
    per_circuit: Dict[str, CircuitStats] = field(default_factory=dict)

    def for_circuit(self, name: str) -> CircuitStats:
        return self.per_circuit.setdefault(name, CircuitStats())


@dataclass
class _Engine:
    """One warmed circuit: the pipeline result + its batch diagnoser."""

    result: ATPGResult
    diagnoser: BatchDiagnoser


class DiagnosisService:
    """Multi-circuit diagnosis frontend with an engine LRU.

    Parameters
    ----------
    config:
        Pipeline configuration used to warm engines (defaults to
        :meth:`PipelineConfig.paper`).
    store:
        Optional artifact store; warmed engines then load cached
        dictionaries/GA results instead of re-simulating.
    max_engines:
        LRU capacity: the least recently used engine is evicted when a
        warm-up would exceed it.
    seed:
        GA seed used for every warm-up (per-circuit determinism).
    """

    def __init__(self, config: Optional[PipelineConfig] = None,
                 store: Optional[ArtifactStore] = None,
                 max_engines: int = 4, seed: int = 0) -> None:
        if max_engines < 1:
            raise ServiceError("max_engines must be >= 1")
        self.config = config or PipelineConfig.paper()
        self.store = store
        self.max_engines = max_engines
        self.seed = seed
        self.stats = ServiceStats()
        self._circuits: Dict[str, CircuitInfo] = {}
        self._engines: "OrderedDict[str, _Engine]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Circuit registry
    # ------------------------------------------------------------------
    def register(self, name: str, info: CircuitInfo) -> None:
        """Register a custom circuit under ``name``.

        Benchmark circuits (see ``BENCHMARK_CIRCUITS``) resolve by name
        automatically and need no registration.
        """
        with self._lock:
            self._circuits[name] = info

    def _resolve(self, name: str) -> CircuitInfo:
        with self._lock:
            info = self._circuits.get(name)
        if info is not None:
            return info
        if name in BENCHMARK_CIRCUITS:
            return get_benchmark(name)
        raise ServiceError(
            f"unknown circuit {name!r}; register() it or use one of "
            f"{sorted(BENCHMARK_CIRCUITS)}")

    @property
    def warmed_circuits(self) -> Tuple[str, ...]:
        """Currently warmed circuit names, least recently used first."""
        with self._lock:
            return tuple(self._engines)

    # ------------------------------------------------------------------
    # Warm-up / LRU
    # ------------------------------------------------------------------
    def warm(self, circuit_name: str) -> ATPGResult:
        """Ensure an engine for ``circuit_name`` is loaded; return its
        pipeline result. Runs the ATPG flow (store-accelerated when a
        store is configured) on a cold miss."""
        return self._engine(circuit_name).result

    def _engine(self, circuit_name: str) -> _Engine:
        with self._lock:
            engine = self._engines.get(circuit_name)
            if engine is not None:
                self._engines.move_to_end(circuit_name)
                return engine
        # Build outside the lock: warming is slow and other circuits'
        # requests must not stall behind it.
        info = self._resolve(circuit_name)
        result = FaultTrajectoryATPG(info, self.config).run(
            seed=self.seed, store=self.store)
        engine = _Engine(result=result,
                         diagnoser=result.batch_diagnoser())
        with self._lock:
            raced = self._engines.get(circuit_name)
            if raced is not None:        # concurrent warm-up won
                self._engines.move_to_end(circuit_name)
                return raced
            self._engines[circuit_name] = engine
            self.stats.for_circuit(circuit_name).warm_loads += 1
            while len(self._engines) > self.max_engines:
                self._engines.popitem(last=False)
                self.stats.evictions += 1
        return engine

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def submit(self, circuit_name: str,
               responses: ResponseBatch) -> List[Diagnosis]:
        """Diagnose a batch of measured responses for one circuit.

        ``responses`` is a sequence of
        :class:`~repro.sim.ac.FrequencyResponse` objects or an (N, F)
        matrix of dB magnitudes at the circuit's test vector (ascending
        frequency order). Returns one :class:`Diagnosis` per row.
        """
        started = time.perf_counter()
        engine = self._engine(circuit_name)
        diagnoses = engine.diagnoser.classify_responses(responses)
        elapsed = time.perf_counter() - started
        with self._lock:
            for scope in (self.stats,
                          self.stats.for_circuit(circuit_name)):
                scope.requests += 1
                scope.responses_diagnosed += len(diagnoses)
                scope.total_latency_seconds += elapsed
        return diagnoses

    def test_vector_hz(self, circuit_name: str) -> Tuple[float, ...]:
        """The warmed test vector for a circuit (what to measure at)."""
        return self._engine(circuit_name).result.test_vector_hz
