"""Stdlib-only observability: metrics registry, trace spans, request IDs.

Three independent pieces, all shared by the serving stack:

* :class:`MetricsRegistry` -- counters, gauges and fixed-bucket
  histograms, all with optional labels, rendered in Prometheus text
  exposition format 0.0.4 (and parsed back by
  :func:`parse_exposition`, which the test suite and the CI smoke job
  use to validate scrapes).
* :class:`Tracer` -- lightweight trace spans: a context-manager API on
  monotonic clocks, parent/child nesting propagated through
  :mod:`contextvars` (so the asyncio front gets correct trees without
  explicit plumbing), and a bounded ring buffer of recently finished
  root spans.  Request IDs ride the same context machinery and are
  propagated over HTTP as ``X-Request-Id`` (see
  :mod:`repro.runtime.server` / :mod:`repro.runtime.cluster`).
* :class:`ProfilingCollector` -- the bridge from the low-level
  :mod:`repro.profiling` event hooks (engine stamp/solve, pipeline
  stages, GA generations, surface sampling) into registry families.

Everything here is plain stdlib; no third-party client library.  A
process-default :data:`REGISTRY` is instrumented at import so engine
and pipeline timings are always collected; per-service metrics live in
per-service registries so concurrent services never share counters.
"""

from __future__ import annotations

import bisect
import contextvars
import re
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import (Callable, Deque, Dict, Iterator, List, Mapping,
                    Optional, Sequence, Tuple)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_SECONDS_BUCKETS",
    "POWER_OF_TWO_BUCKETS",
    "CONTENT_TYPE",
    "parse_exposition",
    "render_families",
    "render_registries",
    "Span",
    "Tracer",
    "TRACER",
    "new_request_id",
    "current_request_id",
    "set_request_id",
    "ensure_request_id",
    "ProfilingCollector",
    "install_default_instrumentation",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Latency buckets (seconds) used for every ``*_seconds`` histogram.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Buckets for batch/row-count histograms (powers of two).
POWER_OF_TWO_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


# ----------------------------------------------------------------------
# Text exposition helpers
# ----------------------------------------------------------------------

def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 2 ** 53:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items())
    return "{" + inner + "}"


def _format_le(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return _format_value(bound)


# ----------------------------------------------------------------------
# Metric children (one per unique label-value combination)
# ----------------------------------------------------------------------

class _CounterChild:
    __slots__ = ("_value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class _GaugeChild:
    __slots__ = ("_value", "_lock", "_func")

    def __init__(self, lock: threading.Lock) -> None:
        self._value = 0.0
        self._lock = lock
        self._func: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is below it (watermarks)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    def set_function(self, func: Callable[[], float]) -> None:
        """Evaluate ``func`` lazily at render time (e.g. disk usage)."""
        self._func = func

    @property
    def value(self) -> float:
        func = self._func
        if func is not None:
            try:
                return float(func())
            except Exception:
                return float("nan")
        return self._value


class _HistogramChild:
    __slots__ = ("_bounds", "_counts", "_sum", "_lock")

    def __init__(self, bounds: Tuple[float, ...],
                 lock: threading.Lock) -> None:
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._lock = lock

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return sum(self._counts)

    def bucket_counts(self) -> List[int]:
        """Non-cumulative per-bucket counts (last entry is +Inf)."""
        with self._lock:
            return list(self._counts)


# ----------------------------------------------------------------------
# Metric families
# ----------------------------------------------------------------------

class _Family:
    """Base for Counter/Gauge/Histogram: children keyed by label values."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = self._make_child()

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, *values: object, **kwargs: object):
        """Get or create the child for one label-value combination."""
        if values and kwargs:
            raise ValueError("pass label values positionally or by "
                             "keyword, not both")
        if kwargs:
            try:
                values = tuple(kwargs[name] for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"{self.name}: missing label {exc.args[0]!r}") from exc
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"value(s), got {len(values)}")
        key = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def _default_child(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} has labels {self.labelnames}; call "
                f".labels(...) first")
        return self._children[()]

    def children(self) -> List[Tuple[Dict[str, str], object]]:
        with self._lock:
            items = list(self._children.items())
        return [(dict(zip(self.labelnames, key)), child)
                for key, child in items]

    # -- rendering ------------------------------------------------------
    def render(self) -> str:
        lines = [f"# HELP {self.name} {_escape_help(self.help)}",
                 f"# TYPE {self.name} {self.type_name}"]
        for labels, child in self.children():
            lines.extend(self._render_child(labels, child))
        return "\n".join(lines) + "\n"

    def _render_child(self, labels: Dict[str, str],
                      child) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Family):
    """Monotonically increasing counter (float-valued, like Prometheus)."""

    type_name = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def _render_child(self, labels, child) -> List[str]:
        return [f"{self.name}{_format_labels(labels)} "
                f"{_format_value(child.value)}"]


class Gauge(_Family):
    """A value that can go up and down (or be computed at render time)."""

    type_name = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set_max(self, value: float) -> None:
        self._default_child().set_max(value)

    def set_function(self, func: Callable[[], float]) -> None:
        self._default_child().set_function(func)

    @property
    def value(self) -> float:
        return self._default_child().value

    def _render_child(self, labels, child) -> List[str]:
        return [f"{self.name}{_format_labels(labels)} "
                f"{_format_value(child.value)}"]


class Histogram(_Family):
    """Fixed-bucket histogram with cumulative Prometheus rendering."""

    type_name = "histogram"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if bounds and bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds
        super().__init__(name, help_text, labelnames)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets, self._lock)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def sum(self) -> float:
        return self._default_child().sum

    @property
    def count(self) -> int:
        return self._default_child().count

    def _render_child(self, labels, child) -> List[str]:
        lines = []
        cumulative = 0
        counts = child.bucket_counts()
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_le(bound)
            lines.append(f"{self.name}_bucket"
                         f"{_format_labels(bucket_labels)} {cumulative}")
        cumulative += counts[-1]
        inf_labels = dict(labels)
        inf_labels["le"] = "+Inf"
        lines.append(f"{self.name}_bucket{_format_labels(inf_labels)} "
                     f"{cumulative}")
        lines.append(f"{self.name}_sum{_format_labels(labels)} "
                     f"{_format_value(child.sum)}")
        lines.append(f"{self.name}_count{_format_labels(labels)} "
                     f"{cumulative}")
        return lines


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class MetricsRegistry:
    """A set of metric families rendered together.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    for an existing name with a matching type and label set returns the
    existing family, so independent modules can share families without
    coordination.  A type or label mismatch raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _get_or_create(self, cls, name: str, help_text: str,
                       labelnames: Sequence[str], **kwargs) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.type_name}, not {cls.type_name}")
                if family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{family.labelnames}, not {tuple(labelnames)}")
                return family
            family = cls(name, help_text, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str,
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, labelnames,
                                   buckets=buckets)

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name]
                    for name in sorted(self._families)]

    def render(self) -> str:
        """The whole registry in Prometheus text exposition 0.0.4."""
        return "".join(family.render() for family in self.families())


def render_registries(*registries: MetricsRegistry) -> str:
    """Concatenate several registries (families must not collide)."""
    return "".join(registry.render() for registry in registries)


#: Process-default registry: engine/pipeline/store instrumentation lands
#: here.  Per-service metrics use per-service registries instead.
REGISTRY = MetricsRegistry()


# ----------------------------------------------------------------------
# Exposition parsing (tests, CI smoke, cluster aggregation)
# ----------------------------------------------------------------------

def _parse_labels(text: str) -> Tuple[Dict[str, str], int]:
    """Parse ``{a="b",...}`` starting at ``text[0] == '{'``.

    Returns the label dict and the index just past the closing brace.
    """
    labels: Dict[str, str] = {}
    i = 1
    while i < len(text):
        while i < len(text) and text[i] in ", \t":
            i += 1
        if i < len(text) and text[i] == "}":
            return labels, i + 1
        j = text.index("=", i)
        name = text[i:j].strip()
        i = j + 1
        if text[i] != '"':
            raise ValueError(f"expected quoted label value at {text[i:]!r}")
        i += 1
        out = []
        while i < len(text) and text[i] != '"':
            ch = text[i]
            if ch == "\\":
                if i + 1 >= len(text):
                    raise ValueError("dangling escape in label value")
                nxt = text[i + 1]
                out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt))
                i += 2
            else:
                out.append(ch)
                i += 1
        if i >= len(text):
            raise ValueError("unterminated label value")
        labels[name] = "".join(out)
        i += 1
    raise ValueError("unterminated label set")


def parse_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Parse Prometheus text exposition 0.0.4.

    Returns ``{family_name: {"type": str, "help": str, "samples":
    [(sample_name, labels_dict, value), ...]}}``.  ``_bucket`` /
    ``_sum`` / ``_count`` samples are grouped under their histogram's
    family name.  Raises ``ValueError`` on malformed lines, so it
    doubles as a format validator for the test suite and CI smoke job.
    """
    families: Dict[str, Dict[str, object]] = {}

    def family_for(sample_name: str) -> Dict[str, object]:
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)]
            if sample_name.endswith(suffix) and trimmed in families \
                    and families[trimmed]["type"] == "histogram":
                base = trimmed
                break
        return families.setdefault(
            base, {"type": "untyped", "help": "", "samples": []})

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            entry = families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []})
            entry["help"] = (help_text.replace("\\n", "\n")
                             .replace("\\\\", "\\"))
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, type_name = rest.partition(" ")
            if type_name not in ("counter", "gauge", "histogram",
                                 "summary", "untyped"):
                raise ValueError(f"unknown metric type {type_name!r}")
            entry = families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []})
            entry["type"] = type_name
            continue
        if line.startswith("#"):
            continue  # comment
        brace = line.find("{")
        if brace >= 0:
            sample_name = line[:brace]
            labels, end = _parse_labels(line[brace:])
            value_text = line[brace + end:].strip()
        else:
            sample_name, _, value_text = line.partition(" ")
            labels = {}
            value_text = value_text.strip()
        if not _METRIC_NAME_RE.match(sample_name):
            raise ValueError(f"invalid sample name {sample_name!r}")
        value_text = value_text.split()[0]
        if value_text == "+Inf":
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        else:
            value = float(value_text)
        family = family_for(sample_name)
        family["samples"].append((sample_name, labels, value))
    return families


def render_families(families: Mapping[str, Mapping[str, object]]) -> str:
    """Render the :func:`parse_exposition` structure back to text.

    Used by the cluster front to re-expose worker scrapes after tagging
    every sample with a ``replica`` label.
    """
    out = []
    for name in sorted(families):
        entry = families[name]
        help_text = str(entry.get("help", ""))
        type_name = str(entry.get("type", "untyped"))
        out.append(f"# HELP {name} {_escape_help(help_text)}")
        out.append(f"# TYPE {name} {type_name}")
        for sample_name, labels, value in entry.get("samples", ()):
            out.append(f"{sample_name}{_format_labels(labels)} "
                       f"{_format_value(value)}")
    return "\n".join(out) + ("\n" if out else "")


# ----------------------------------------------------------------------
# Trace spans
# ----------------------------------------------------------------------

class Span:
    """One timed operation; children nest via the tracer's contextvar."""

    __slots__ = ("name", "attrs", "start", "duration_s", "children",
                 "request_id")

    def __init__(self, name: str, attrs: Dict[str, object],
                 request_id: Optional[str]) -> None:
        self.name = name
        self.attrs = attrs
        self.start = time.perf_counter()
        self.duration_s: Optional[float] = None
        self.children: List["Span"] = []
        self.request_id = request_id

    def finish(self) -> None:
        self.duration_s = time.perf_counter() - self.start

    def to_dict(self, _origin: Optional[float] = None) -> Dict[str, object]:
        origin = self.start if _origin is None else _origin
        payload: Dict[str, object] = {
            "name": self.name,
            "start_ms": round((self.start - origin) * 1e3, 3),
            "duration_ms": round((self.duration_s or 0.0) * 1e3, 3),
        }
        if self.request_id:
            payload["request_id"] = self.request_id
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [child.to_dict(origin)
                                   for child in self.children]
        return payload


class Tracer:
    """Context-manager spans with a bounded ring of finished roots.

    The current span rides a :mod:`contextvars.ContextVar`, so nesting
    follows logical (task-local) context through the asyncio front:
    concurrent requests build independent trees.
    """

    def __init__(self, capacity: int = 256) -> None:
        self._current: "contextvars.ContextVar[Optional[Span]]" = \
            contextvars.ContextVar("repro_current_span", default=None)
        self._lock = threading.Lock()
        self._recent: Deque[Span] = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        return self._recent.maxlen or 0

    def current(self) -> Optional[Span]:
        return self._current.get()

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        parent = self._current.get()
        node = Span(name, attrs, current_request_id())
        token = self._current.set(node)
        try:
            yield node
        finally:
            node.finish()
            self._current.reset(token)
            if parent is not None:
                parent.children.append(node)
            else:
                with self._lock:
                    self._recent.append(node)

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Most-recent finished root spans, newest last."""
        with self._lock:
            spans = list(self._recent)
        if limit is not None:
            spans = spans[-limit:]
        return [span.to_dict() for span in spans]

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()


#: Process-default tracer (the serving layer records into this one).
TRACER = Tracer()


# ----------------------------------------------------------------------
# Request IDs
# ----------------------------------------------------------------------

_REQUEST_ID: "contextvars.ContextVar[Optional[str]]" = \
    contextvars.ContextVar("repro_request_id", default=None)

_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,128}$")


def new_request_id() -> str:
    return uuid.uuid4().hex


def current_request_id() -> Optional[str]:
    return _REQUEST_ID.get()


def set_request_id(request_id: Optional[str]) -> None:
    _REQUEST_ID.set(request_id)


def ensure_request_id(candidate: Optional[str] = None) -> str:
    """Adopt a well-formed inbound ID, else mint one; set the context."""
    if candidate and _REQUEST_ID_RE.match(candidate):
        request_id = candidate
    else:
        request_id = new_request_id()
    _REQUEST_ID.set(request_id)
    return request_id


# ----------------------------------------------------------------------
# Profiling bridge: repro.profiling events -> registry families
# ----------------------------------------------------------------------

class ProfilingCollector:
    """Subscribes to :mod:`repro.profiling` and fills metric families.

    Families (all prefixed ``repro_``):

    * ``repro_engine_stamp_seconds{engine}`` -- histogram of MNA
      stamping (engine construction) wall time;
    * ``repro_engine_solve_seconds{engine}`` -- histogram of
      ``transfer_block`` wall time;
    * ``repro_engine_variants_solved_total{engine}`` /
      ``repro_engine_solve_chunks_total{engine}`` -- work counters;
    * ``repro_engine_lowrank_updates_total`` -- variants solved via
      Sherman-Morrison-Woodbury updates by the factored engine;
    * ``repro_engine_lowrank_fallbacks_total{reason}`` -- variants the
      factored engine routed to the dense path (``conditioning``,
      ``rank`` or ``nonfinite``);
    * ``repro_engine_lowrank_factor_seconds{mode}`` -- histogram of
      nominal factorisation + multi-RHS solve time (``dense`` or
      ``sparse`` assembly);
    * ``repro_engine_lowrank_update_seconds`` -- histogram of the
      batched capacitance-solve (update) stage;
    * ``repro_pipeline_stage_seconds{stage}`` -- histogram of ATPG
      build stages (dictionary, ga_search, exact, trajectories);
    * ``repro_ga_generations_total`` / ``repro_ga_generation_seconds``;
    * ``repro_surface_samples_total`` / ``repro_surface_rows_total``.

    Usable as a context manager for scoped collection into a private
    registry (tests, benchmarks).
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._installed = False
        self._stamp_seconds = registry.histogram(
            "repro_engine_stamp_seconds",
            "MNA stamp (engine construction) wall time.", ("engine",))
        self._solve_seconds = registry.histogram(
            "repro_engine_solve_seconds",
            "Batched transfer_block solve wall time.", ("engine",))
        self._variants_total = registry.counter(
            "repro_engine_variants_solved_total",
            "Circuit variants solved across all transfer blocks.",
            ("engine",))
        self._chunks_total = registry.counter(
            "repro_engine_solve_chunks_total",
            "Chunked batched-solve invocations.", ("engine",))
        self._lowrank_updates_total = registry.counter(
            "repro_engine_lowrank_updates_total",
            "Variants solved via Sherman-Morrison-Woodbury low-rank "
            "updates.")
        self._lowrank_fallbacks_total = registry.counter(
            "repro_engine_lowrank_fallbacks_total",
            "Variants routed from the low-rank path to the dense "
            "fallback.", ("reason",))
        self._lowrank_factor_seconds = registry.histogram(
            "repro_engine_lowrank_factor_seconds",
            "Nominal factorisation + multi-RHS solve wall time.",
            ("mode",))
        self._lowrank_update_seconds = registry.histogram(
            "repro_engine_lowrank_update_seconds",
            "Low-rank capacitance-solve (update stage) wall time.")
        self._stage_seconds = registry.histogram(
            "repro_pipeline_stage_seconds",
            "ATPG pipeline stage wall time.", ("stage",),
            buckets=DEFAULT_SECONDS_BUCKETS + (30.0, 120.0))
        self._generations_total = registry.counter(
            "repro_ga_generations_total", "GA generations executed.")
        self._generation_seconds = registry.histogram(
            "repro_ga_generation_seconds", "GA generation wall time.")
        self._samples_total = registry.counter(
            "repro_surface_samples_total",
            "Vectorised response-surface sampling calls.")
        self._surface_rows_total = registry.counter(
            "repro_surface_rows_total",
            "Fault-variant rows sampled from response surfaces.")

    # -- sink -----------------------------------------------------------
    def __call__(self, stage: str, seconds: float,
                 meta: Mapping[str, object]) -> None:
        if stage == "engine.solve":
            engine = str(meta.get("engine", "unknown"))
            self._solve_seconds.labels(engine).observe(seconds)
            variants = meta.get("variants")
            if variants:
                self._variants_total.labels(engine).inc(float(variants))
            chunks = meta.get("chunks")
            if chunks:
                self._chunks_total.labels(engine).inc(float(chunks))
        elif stage == "engine.stamp":
            engine = str(meta.get("engine", "unknown"))
            self._stamp_seconds.labels(engine).observe(seconds)
        elif stage == "engine.factor":
            mode = str(meta.get("mode", "dense"))
            self._lowrank_factor_seconds.labels(mode).observe(seconds)
        elif stage == "engine.lowrank":
            self._lowrank_update_seconds.observe(seconds)
            updates = meta.get("updates")
            if updates:
                self._lowrank_updates_total.inc(float(updates))
            for reason in ("conditioning", "rank", "nonfinite"):
                count = meta.get(f"fallback_{reason}")
                if count:
                    self._lowrank_fallbacks_total.labels(reason) \
                        .inc(float(count))
        elif stage.startswith("pipeline."):
            self._stage_seconds.labels(stage[len("pipeline."):]) \
                .observe(seconds)
        elif stage == "ga.generation":
            self._generations_total.inc()
            self._generation_seconds.observe(seconds)
        elif stage == "surface.sample":
            self._samples_total.inc()
            rows = meta.get("rows")
            if rows:
                self._surface_rows_total.inc(float(rows))

    # -- lifecycle ------------------------------------------------------
    def install(self) -> "ProfilingCollector":
        from .. import profiling
        if not self._installed:
            profiling.add_profile_sink(self)
            self._installed = True
        return self

    def uninstall(self) -> None:
        from .. import profiling
        if self._installed:
            profiling.remove_profile_sink(self)
            self._installed = False

    def __enter__(self) -> "ProfilingCollector":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()


_DEFAULT_COLLECTOR: Optional[ProfilingCollector] = None


def install_default_instrumentation() -> ProfilingCollector:
    """Wire the process-default :data:`REGISTRY` to the profiling hooks.

    Idempotent; called at import so `/v1/metrics` always carries engine
    and pipeline families without explicit setup.
    """
    global _DEFAULT_COLLECTOR
    if _DEFAULT_COLLECTOR is None:
        _DEFAULT_COLLECTOR = ProfilingCollector(REGISTRY).install()
    return _DEFAULT_COLLECTOR


install_default_instrumentation()
