"""Consistent-hash diagnosis cluster: circuit -> replica routing.

One :class:`~repro.runtime.server.AsyncDiagnosisService` process tops
out at one box's cores and one engine cache. This module scales the
same ``submit`` surface across N replicas:

* :class:`CircuitRouter` consistent-hashes *circuit names* onto
  replicas (same :class:`~repro.runtime.backends.HashRing` that shards
  artifact keys), so every circuit's requests land on the replica that
  holds its warmed engine -- the cluster's aggregate engine cache is
  the *sum* of the replicas' caches instead of N copies of one;
* :class:`ClusterService` fronts the replicas with the same awaitable
  ``submit`` / ``submit_many`` / ``warm`` / ``stats_snapshot`` surface
  as ``AsyncDiagnosisService`` (so :class:`DiagnosisHTTPServer` can
  serve either), with health-checks and re-route-on-death failover:
  a dead replica is marked down and its circuits walk to the next
  replica on the ring -- nothing else remaps.

Replicas come in two shapes:

* :class:`InProcessReplica` -- an ``AsyncDiagnosisService`` on this
  event loop. Deterministic and dependency-free: the equivalence
  property tests drive these.
* :class:`SpawnedReplica` -- a worker *process* started through the
  ``repro-serve`` CLI, spoken to over the existing
  :mod:`repro.runtime.codec` wire format on keep-alive HTTP
  connections (:class:`HTTPReplica` is the transport; point it at any
  already-running server to join it to a cluster).

Because every replica warms engines from the same deterministic
pipeline (same config, same seed) -- ideally through a shared
:class:`~repro.runtime.store.ArtifactStore` -- a request's diagnoses
are **bitwise-identical** no matter which replica answers. The
property tests in ``tests/test_cluster.py`` pin this: a 2- or
3-replica cluster equals a single service for any interleaving.
"""

from __future__ import annotations

import abc
import asyncio
import json
import os
import sys
import time
from pathlib import Path
from typing import (Awaitable, Callable, Dict, FrozenSet, List,
                    Optional, Sequence, Set, Tuple, TypeVar)

from ..circuits.library import BENCHMARK_CIRCUITS
from ..diagnosis.classifier import Diagnosis
from ..diagnosis.posterior import PosteriorDiagnosis
from ..errors import (ClusterError, ReplicaTimeoutError,
                      ReplicaUnavailableError, ServiceError, StoreError)
from . import codec, telemetry
from .backends import HashRing
from .batch import ResponseBatch
from .server import AsyncDiagnosisService

__all__ = ["CircuitRouter", "Replica", "InProcessReplica",
           "HTTPReplica", "SpawnedReplica", "ClusterService"]

T = TypeVar("T")

#: How the ``repro-serve`` worker announces its bound address on
#: stdout (port 0 binds ephemerally; the parent parses this line).
LISTENING_PREFIX = "REPRO-SERVE LISTENING"

#: Worker-knob defaults shared by :meth:`SpawnedReplica.spawn`,
#: :meth:`ClusterService.spawn` and the ``repro-serve`` argparse
#: defaults -- one source, so a directly spawned cluster and a
#: CLI-launched one run with identical settings.
WORKER_DEFAULTS = {
    "max_engines": 4,
    "window_ms": 2.0,
    "max_batch": 64,
    "max_pending": 1024,
    "overflow": "wait",
    "shards": 2,
    "posterior_samples": 64,
    "posterior_tolerance": 0.05,
}


class CircuitRouter:
    """Consistent-hash placement of circuit names onto replica names.

    Thin domain wrapper over :class:`HashRing`: stable placement, and
    on replica loss only the lost replica's circuits remap (each to
    the next live replica in its deterministic ring-walk order).
    """

    def __init__(self, replica_names: Sequence[str],
                 vnodes: int = 64) -> None:
        try:
            self.ring = HashRing(replica_names, vnodes=vnodes)
        except StoreError as exc:
            raise ClusterError(str(exc)) from exc

    @property
    def replica_names(self) -> Tuple[str, ...]:
        return self.ring.nodes

    def replica_for(self, circuit_name: str,
                    exclude: FrozenSet[str] = frozenset()) -> str:
        """The replica owning ``circuit_name``, skipping ``exclude``."""
        try:
            return self.ring.node_for(circuit_name, exclude=exclude)
        except StoreError as exc:
            raise ClusterError(
                f"no live replica for circuit {circuit_name!r} "
                f"(down: {sorted(exclude)})") from exc

    def failover_order(self, circuit_name: str) -> Tuple[str, ...]:
        """Owner first, then the deterministic re-route order."""
        return tuple(self.ring.nodes_for(circuit_name))


# ----------------------------------------------------------------------
# Replica handles
# ----------------------------------------------------------------------
class Replica(abc.ABC):
    """One cluster member, whatever its transport.

    Transport-level failures (process gone, connection refused, closed
    front) surface as :class:`ReplicaUnavailableError`; the cluster
    catches exactly that to fail over. Request-level errors (unknown
    circuit, malformed rows, backpressure) propagate to the caller
    unchanged -- another replica would refuse them identically.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    @abc.abstractmethod
    async def submit(self, circuit_name: str,
                     responses: ResponseBatch) -> List[Diagnosis]: ...

    @abc.abstractmethod
    async def submit_many(self, requests: Sequence[Tuple[str,
                                                         ResponseBatch]]
                          ) -> List[List[Diagnosis]]: ...

    @abc.abstractmethod
    async def warm(self, circuit_name: str) -> None: ...

    @abc.abstractmethod
    async def test_vector_hz(self, circuit_name: str
                             ) -> Tuple[float, ...]: ...

    @abc.abstractmethod
    async def healthy(self) -> bool: ...

    @abc.abstractmethod
    async def stats_snapshot(self) -> Dict[str, object]: ...

    @abc.abstractmethod
    async def aclose(self) -> None: ...

    # Concrete (not abstract) so transports predating the
    # probabilistic tier keep working; they refuse with a
    # request-level error the cluster will not fail over on.
    async def submit_posterior(self, circuit_name: str,
                               responses: ResponseBatch
                               ) -> List[PosteriorDiagnosis]:
        raise ServiceError(
            f"replica {self.name} does not serve posterior diagnosis")

    async def submit_posterior_many(
            self, requests: Sequence[Tuple[str, ResponseBatch]]
    ) -> List[List[PosteriorDiagnosis]]:
        raise ServiceError(
            f"replica {self.name} does not serve posterior diagnosis")

    # Optional surface, used for best-effort introspection only.
    async def metrics_text(self) -> str:
        """The replica's Prometheus exposition text (empty when the
        transport does not expose metrics)."""
        return ""

    @property
    def queue_depth(self) -> int:
        return 0

    def warmed_circuits(self) -> Tuple[str, ...]:
        return ()

    def registered_circuits(self) -> Tuple[str, ...]:
        return ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class InProcessReplica(Replica):
    """An :class:`AsyncDiagnosisService` living on this event loop."""

    def __init__(self, name: str,
                 front: AsyncDiagnosisService) -> None:
        super().__init__(name)
        self.front = front

    def _check_alive(self) -> None:
        if self.front._closed:
            raise ReplicaUnavailableError(f"replica {self.name} is "
                                          f"closed")

    async def submit(self, circuit_name: str,
                     responses: ResponseBatch) -> List[Diagnosis]:
        self._check_alive()
        return await self.front.submit(circuit_name, responses)

    async def submit_many(self, requests: Sequence[Tuple[str,
                                                         ResponseBatch]]
                          ) -> List[List[Diagnosis]]:
        self._check_alive()
        return await self.front.submit_many(requests)

    async def submit_posterior(self, circuit_name: str,
                               responses: ResponseBatch
                               ) -> List[PosteriorDiagnosis]:
        self._check_alive()
        return await self.front.submit_posterior(circuit_name,
                                                 responses)

    async def submit_posterior_many(
            self, requests: Sequence[Tuple[str, ResponseBatch]]
    ) -> List[List[PosteriorDiagnosis]]:
        self._check_alive()
        return await self.front.submit_posterior_many(requests)

    async def warm(self, circuit_name: str) -> None:
        self._check_alive()
        await self.front.warm(circuit_name)

    async def test_vector_hz(self, circuit_name: str
                             ) -> Tuple[float, ...]:
        self._check_alive()
        return await self.front.test_vector_hz(circuit_name)

    async def healthy(self) -> bool:
        return not self.front._closed

    async def stats_snapshot(self) -> Dict[str, object]:
        return await self.front.stats_snapshot()

    async def metrics_text(self) -> str:
        return await self.front.metrics_text()

    async def aclose(self) -> None:
        await self.front.aclose()

    @property
    def queue_depth(self) -> int:
        return self.front.queue_depth

    def warmed_circuits(self) -> Tuple[str, ...]:
        return self.front.warmed_circuits()

    def registered_circuits(self) -> Tuple[str, ...]:
        return tuple(self.front.known_circuits()["registered"])


def _wire_error_type(kind: Optional[str]) -> type:
    """The exception class to re-raise for a wire error ``kind``.

    Any class from :mod:`repro.errors` resolves by name, so a
    request-level error crosses the HTTP boundary as the same type the
    in-process replica would raise (e.g. ``DiagnosisError`` for wrong
    signature width); anything else degrades to ``ServiceError``.
    """
    from .. import errors as _errors
    exc_type = getattr(_errors, kind or "", None)
    if isinstance(exc_type, type) and \
            issubclass(exc_type, ReplicaUnavailableError):
        # Never resurrect a *remote* replica failure (or timeout) as
        # our own transport failure: the server we just spoke to is
        # alive (it answered); marking it down/slow would be wrong.
        return ClusterError
    if isinstance(exc_type, type) and \
            issubclass(exc_type, _errors.ReproError):
        return exc_type
    return ServiceError


class HTTPReplica(Replica):
    """A replica spoken to over the stdlib HTTP front.

    Maintains a small pool of keep-alive connections (one request in
    flight per connection; the server pipelines strictly in order, so
    pooling -- not pipelining -- is what buys client concurrency).
    Requests must carry numeric ``(N, F)`` dB matrices --
    ``FrequencyResponse`` objects cannot ride the wire
    (:class:`~repro.errors.CodecError`); sample them at the circuit's
    test vector first.
    Requests are pure functions of their payload, so a request that
    died with a stale keep-alive connection is retried once on a fresh
    one; a replica that cannot be reached at all raises
    :class:`ReplicaUnavailableError` for the cluster to fail over.
    """

    def __init__(self, name: str, host: str, port: int, *,
                 pool_size: int = 8,
                 request_timeout: float = 600.0,
                 health_timeout: float = 2.0) -> None:
        super().__init__(name)
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.request_timeout = request_timeout
        self.health_timeout = health_timeout
        self._idle: List[Tuple[asyncio.StreamReader,
                               asyncio.StreamWriter]] = []
        self._slots = asyncio.Semaphore(pool_size)
        # Introspection as of the last health probe (the transport is
        # async; warmed_circuits()/queue_depth/registered_circuits()
        # are sync best-effort).
        self._warmed: Tuple[str, ...] = ()
        self._registered: Tuple[str, ...] = ()
        self._queue_depth = 0

    # -- transport -----------------------------------------------------
    async def _connect(self) -> Tuple[asyncio.StreamReader,
                                      asyncio.StreamWriter]:
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.health_timeout)
        except (OSError, asyncio.TimeoutError) as exc:
            raise ReplicaUnavailableError(
                f"replica {self.name} unreachable at "
                f"{self.host}:{self.port}: {exc}") from exc

    @staticmethod
    def _close(conn: Tuple[asyncio.StreamReader,
                           asyncio.StreamWriter]) -> None:
        conn[1].close()

    @staticmethod
    async def _read_response(reader: asyncio.StreamReader
                             ) -> Tuple[int, bytes, bool]:
        status_line = await reader.readline()
        parts = status_line.split()
        # A truncated status line (replica died mid-write) must read
        # as a transport failure so the caller's failover kicks in.
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(
                f"malformed response status line {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line == b"":
                # EOF before the blank line: the replica died between
                # status line and headers -- a transport failure, not
                # a complete zero-length response.
                raise ConnectionError("connection closed mid-headers")
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError as exc:
            # Whatever answered is not a repro replica (stale port
            # takeover): a transport failure, so failover applies.
            raise ConnectionError(
                f"malformed Content-Length in response: {exc}") from exc
        payload = await reader.readexactly(length) if length else b""
        keep = headers.get("connection", "keep-alive").lower() != "close"
        return status, payload, keep

    #: Transport failures that mark a connection (and possibly its
    #: keep-alive siblings) stale.
    _CONN_ERRORS = (ConnectionError, OSError,
                    asyncio.IncompleteReadError)

    async def _attempt(self, conn, head: bytes, body: bytes,
                       timeout: float) -> Tuple[int, bytes]:
        """One exchange on one connection. Connection errors propagate
        raw (the caller decides stale-retry vs replica-dead); the
        connection is closed on any failure, repooled on success."""
        reader, writer = conn
        try:
            writer.write(head + body)

            async def exchange():
                # drain + read together under one timeout: a frozen
                # replica must not hang us in drain().
                await writer.drain()
                return await self._read_response(reader)

            status, payload, keep = await asyncio.wait_for(
                exchange(), timeout=timeout)
        except asyncio.TimeoutError as exc:
            # Distinct from transport death: the replica may be alive
            # but saturated -- the cluster re-routes this request
            # without marking it down.
            self._close(conn)
            raise ReplicaTimeoutError(
                f"replica {self.name} did not answer within "
                f"{timeout}s") from exc
        except BaseException:
            # Connection error, cancellation (caller-side timeout) or
            # anything unexpected: the connection is mid-exchange and
            # unusable -- close it rather than leak the socket.
            self._close(conn)
            raise
        if keep and len(self._idle) < self.pool_size:
            self._idle.append(conn)
        else:
            self._close(conn)
        return status, payload

    async def _request(self, method: str, path: str, body: bytes = b"",
                       timeout: Optional[float] = None
                       ) -> Tuple[int, bytes]:
        timeout = timeout if timeout is not None else self.request_timeout
        # Propagate the caller's request id so a hop through the
        # cluster front keeps one id across every access log and span.
        request_id = telemetry.current_request_id()
        id_line = f"X-Request-Id: {request_id}\r\n" if request_id else ""
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}\r\n{id_line}"
                f"Content-Length: {len(body)}\r\n\r\n").encode("latin1")
        async with self._slots:
            if self._idle:
                try:
                    return await self._attempt(self._idle.pop(), head,
                                               body, timeout)
                except self._CONN_ERRORS:
                    # Stale keep-alive connection: its pool siblings
                    # are from the same dead server epoch, drop them
                    # all, then retry once on a fresh connection
                    # (requests are pure functions of their payload,
                    # so the retry is safe).
                    while self._idle:
                        self._close(self._idle.pop())
            conn = await self._connect()
            try:
                return await self._attempt(conn, head, body, timeout)
            except self._CONN_ERRORS as exc:
                raise ReplicaUnavailableError(
                    f"replica {self.name} failed mid-request: "
                    f"{exc!r}") from exc

    def _raise_for_error(self, status: int, payload: bytes) -> None:
        try:
            info = json.loads(payload)["error"]
            kind, message = info.get("kind"), info.get("message", "")
        except (ValueError, KeyError, TypeError):
            kind, message = None, payload[:200].decode("utf-8",
                                                       "replace")
        raise _wire_error_type(kind)(
            f"replica {self.name} answered {status}: {message}")

    # -- the replica surface -------------------------------------------
    async def submit(self, circuit_name: str,
                     responses: ResponseBatch) -> List[Diagnosis]:
        status, payload = await self._request(
            "POST", "/v1/diagnose",
            codec.encode_request(circuit_name, responses))
        if status != 200:
            self._raise_for_error(status, payload)
        return codec.decode_response(payload)

    async def submit_many(self, requests: Sequence[Tuple[str,
                                                         ResponseBatch]]
                          ) -> List[List[Diagnosis]]:
        status, payload = await self._request(
            "POST", "/v1/diagnose-many",
            codec.encode_request_many(requests))
        if status != 200:
            self._raise_for_error(status, payload)
        return codec.decode_response_many(payload)

    async def submit_posterior(self, circuit_name: str,
                               responses: ResponseBatch
                               ) -> List[PosteriorDiagnosis]:
        status, payload = await self._request(
            "POST", "/v1/diagnose-posterior",
            codec.encode_request(circuit_name, responses))
        if status != 200:
            self._raise_for_error(status, payload)
        return codec.decode_posterior_response(payload)

    async def submit_posterior_many(
            self, requests: Sequence[Tuple[str, ResponseBatch]]
    ) -> List[List[PosteriorDiagnosis]]:
        status, payload = await self._request(
            "POST", "/v1/diagnose-posterior",
            codec.encode_request_many(requests))
        if status != 200:
            self._raise_for_error(status, payload)
        return codec.decode_posterior_response_many(payload)

    async def warm(self, circuit_name: str) -> None:
        await self.test_vector_hz(circuit_name)

    async def test_vector_hz(self, circuit_name: str
                             ) -> Tuple[float, ...]:
        status, payload = await self._request(
            "GET", f"/v1/test-vector/{circuit_name}")
        if status != 200:
            self._raise_for_error(status, payload)
        return tuple(json.loads(payload)["test_vector_hz"])

    async def healthy(self) -> bool:
        # Deliberately outside the request pool: probes must stay
        # bounded by health_timeout even when a wedged replica has
        # every pool slot occupied by 10-minute diagnose requests --
        # that saturation is exactly what the probe needs to detect.
        try:
            conn = await self._connect()
            reader, writer = conn
            try:
                writer.write((f"GET /v1/healthz HTTP/1.1\r\n"
                              f"Host: {self.host}\r\n"
                              f"Content-Length: 0\r\n\r\n"
                              ).encode("latin1"))

                async def exchange():
                    await writer.drain()
                    return await self._read_response(reader)

                status, payload, _ = await asyncio.wait_for(
                    exchange(), timeout=self.health_timeout)
            finally:
                self._close(conn)
        except (ReplicaUnavailableError, ConnectionError, OSError,
                asyncio.IncompleteReadError, asyncio.TimeoutError):
            return False
        if status == 200:
            try:                 # refresh the sync introspection cache
                health = json.loads(payload)
                self._warmed = tuple(health.get("warmed", ()))
                self._registered = tuple(health.get("registered", ()))
                self._queue_depth = int(health.get("queue_depth", 0))
            except (ValueError, TypeError):
                pass
        return status == 200

    async def stats_snapshot(self) -> Dict[str, object]:
        status, payload = await self._request("GET", "/v1/stats")
        if status != 200:
            self._raise_for_error(status, payload)
        return json.loads(payload)

    async def metrics_text(self) -> str:
        status, payload = await self._request("GET", "/v1/metrics")
        if status != 200:
            self._raise_for_error(status, payload)
        return payload.decode("utf-8", "replace")

    @property
    def queue_depth(self) -> int:
        return self._queue_depth

    def warmed_circuits(self) -> Tuple[str, ...]:
        return self._warmed

    def registered_circuits(self) -> Tuple[str, ...]:
        return self._registered

    async def aclose(self) -> None:
        while self._idle:
            self._close(self._idle.pop())


class SpawnedReplica(HTTPReplica):
    """A worker process started through the ``repro-serve`` CLI.

    The worker binds an ephemeral port, announces it on stdout
    (``REPRO-SERVE LISTENING <host> <port>``) and then serves the
    standard HTTP front; this handle owns the process and terminates
    it on :meth:`aclose`.
    """

    def __init__(self, name: str, host: str, port: int,
                 process: "asyncio.subprocess.Process",
                 **kwargs) -> None:
        super().__init__(name, host, port, **kwargs)
        self.process = process

    @staticmethod
    async def _reap(process: "asyncio.subprocess.Process") -> None:
        """Terminate and wait; escalate to kill on a hung worker."""
        if process.returncode is not None:
            return
        process.terminate()
        try:
            await asyncio.wait_for(process.wait(), timeout=10.0)
        except asyncio.TimeoutError:
            process.kill()
            await process.wait()

    @classmethod
    async def spawn(cls, name: str, *,
                    store_root: Optional[Path] = None,
                    backend: str = "local",
                    shards: int = WORKER_DEFAULTS["shards"],
                    config: Optional[object] = None, seed: int = 0,
                    max_engines: int = WORKER_DEFAULTS["max_engines"],
                    window_ms: float = WORKER_DEFAULTS["window_ms"],
                    max_batch: int = WORKER_DEFAULTS["max_batch"],
                    max_pending: int = WORKER_DEFAULTS["max_pending"],
                    overflow: str = WORKER_DEFAULTS["overflow"],
                    posterior_samples: int =
                    WORKER_DEFAULTS["posterior_samples"],
                    posterior_tolerance: float =
                    WORKER_DEFAULTS["posterior_tolerance"],
                    start_timeout: float = 120.0,
                    **kwargs) -> "SpawnedReplica":
        """Start one worker and wait for its listening announcement.

        ``config`` is a :class:`~repro.core.config.PipelineConfig`
        (serialised to the worker over ``--config-json``); the other
        knobs mirror the CLI flags. Workers always bind loopback: only
        the local router talks to them, and an unauthenticated worker
        port must never ride a public interface.
        """
        import repro

        argv = [sys.executable, "-m", "repro.runtime.cli",
                "--host", "127.0.0.1", "--port", "0",
                "--seed", str(seed),
                "--max-engines", str(max_engines),
                "--window-ms", str(window_ms),
                "--max-batch", str(max_batch),
                "--max-pending", str(max_pending),
                "--overflow", overflow,
                "--backend", backend, "--shards", str(shards),
                "--posterior-samples", str(posterior_samples),
                "--posterior-tolerance", str(posterior_tolerance)]
        if store_root is not None:
            argv += ["--store-root", str(store_root)]
        if config is not None:
            argv += ["--config-json", json.dumps(config.to_json_dict())]
        # The worker must import this very source tree even when the
        # package is not installed.
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + \
            env.get("PYTHONPATH", "")
        process = await asyncio.create_subprocess_exec(
            *argv, stdout=asyncio.subprocess.PIPE, env=env)
        try:
            while True:
                line = await asyncio.wait_for(
                    process.stdout.readline(), timeout=start_timeout)
                if not line:
                    raise ClusterError(
                        f"worker {name} exited before announcing "
                        f"its address (rc={process.returncode})")
                text = line.decode("utf-8", "replace").strip()
                if text.startswith(LISTENING_PREFIX):
                    _, _, address = text.partition(LISTENING_PREFIX)
                    bound_host, port_text = address.split()
                    return cls(name, bound_host, int(port_text),
                               process=process, **kwargs)
        except BaseException:
            # Covers cancellation and unexpected parse errors too:
            # whatever aborts the spawn must not orphan the worker.
            await cls._reap(process)
            raise

    async def healthy(self) -> bool:
        if self.process.returncode is not None:
            return False
        return await super().healthy()

    async def aclose(self) -> None:
        await super().aclose()
        await self._reap(self.process)


# ----------------------------------------------------------------------
# The cluster front
# ----------------------------------------------------------------------
class ClusterService:
    """Awaitable diagnosis front over N consistent-hash replicas.

    Exposes the same serving surface as
    :class:`~repro.runtime.server.AsyncDiagnosisService` (``submit``,
    ``submit_many``, ``submit_posterior``, ``submit_posterior_many``,
    ``warm``, ``test_vector_hz``, ``stats_snapshot``,
    ``known_circuits``, ``warmed_circuits``, ``queue_depth``,
    ``aclose``), so :class:`~repro.runtime.server.DiagnosisHTTPServer`
    can front a whole cluster unchanged.

    Routing: every circuit name hashes to one owning replica; all of a
    circuit's traffic lands there, so its warmed engine (and its
    coalescing queue) lives exactly once in the cluster. On a replica
    failure (:class:`ReplicaUnavailableError` from the transport) the
    replica is marked down and the request retries on the next replica
    of the ring -- only the dead replica's circuits move.
    :meth:`check_health` (or the :meth:`run_health_loop` background
    task) probes replicas and brings revived ones back into the ring.
    """

    def __init__(self, replicas: Sequence[Replica],
                 vnodes: int = 64) -> None:
        if not replicas:
            raise ClusterError("cluster needs at least one replica")
        names = [replica.name for replica in replicas]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate replica names: {names}")
        self.replicas: Dict[str, Replica] = {
            replica.name: replica for replica in replicas}
        self.router = CircuitRouter(names, vnodes=vnodes)
        self.down: Set[str] = set()
        self.requests = 0
        self.bursts = 0
        self.failovers = 0
        self._closed = False
        # Cluster-level metrics live on their own registry (the plain
        # int counters above stay -- tests and stats_snapshot read
        # them); /v1/metrics renders it ahead of the replica scrapes.
        self.registry = telemetry.MetricsRegistry()
        self._m_requests = self.registry.counter(
            "repro_cluster_requests_total",
            "Diagnosis requests accepted by the cluster front.")
        self._m_bursts = self.registry.counter(
            "repro_cluster_bursts_total",
            "Mixed-circuit bursts accepted by the cluster front.")
        self._m_failovers = self.registry.counter(
            "repro_cluster_failovers_total",
            "Request shares re-routed off their owning replica.",
            labelnames=("reason",))
        self._m_timeouts = self.registry.counter(
            "repro_cluster_replica_timeouts_total",
            "Replica calls that exceeded the request timeout.",
            labelnames=("replica",))
        self._m_up = self.registry.gauge(
            "repro_cluster_replica_up",
            "1 while the replica is in the ring, 0 once marked down.",
            labelnames=("replica",))
        self._m_latency = self.registry.histogram(
            "repro_cluster_replica_call_seconds",
            "Wall time of one replica call as seen by the router.",
            labelnames=("replica",))
        for name in self.replicas:
            self._m_up.labels(name).set(1.0)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def in_process(cls, n_replicas: int, *,
                   services: Optional[Sequence] = None,
                   vnodes: int = 64,
                   **async_kwargs) -> "ClusterService":
        """A cluster of in-process replicas on the current loop.

        ``services`` may be one prebuilt
        :class:`~repro.runtime.service.DiagnosisService` shared by all
        replicas (cheap deterministic tests: one engine cache, N
        routing queues) or one per replica; omitted, every replica
        builds its own from ``async_kwargs``.
        """
        if n_replicas < 1:
            raise ClusterError("n_replicas must be >= 1")
        from .service import DiagnosisService
        if services is None:
            shared: Sequence = [None] * n_replicas
        elif isinstance(services, DiagnosisService):
            shared = [services] * n_replicas
        else:
            shared = list(services)
            if len(shared) != n_replicas:
                raise ClusterError(
                    f"{len(shared)} services for {n_replicas} replicas")
        replicas = []
        for index, service in enumerate(shared):
            front = AsyncDiagnosisService(service, **async_kwargs) \
                if service is not None \
                else AsyncDiagnosisService(**async_kwargs)
            replicas.append(InProcessReplica(f"replica-{index}", front))
        return cls(replicas, vnodes=vnodes)

    @classmethod
    async def spawn(cls, n_replicas: int, *,
                    store_root: Optional[Path] = None,
                    backend: str = "local",
                    shards: int = WORKER_DEFAULTS["shards"],
                    config: Optional[object] = None, seed: int = 0,
                    max_engines: int = WORKER_DEFAULTS["max_engines"],
                    window_ms: float = WORKER_DEFAULTS["window_ms"],
                    max_batch: int = WORKER_DEFAULTS["max_batch"],
                    max_pending: int = WORKER_DEFAULTS["max_pending"],
                    overflow: str = WORKER_DEFAULTS["overflow"],
                    posterior_samples: int =
                    WORKER_DEFAULTS["posterior_samples"],
                    posterior_tolerance: float =
                    WORKER_DEFAULTS["posterior_tolerance"],
                    warm: Sequence[str] = (),
                    vnodes: int = 64, **kwargs) -> "ClusterService":
        """Spawn N ``repro-serve`` worker processes and front them.

        Workers share ``store_root`` (when given), so each replica's
        cold warm-ups load cached artifacts instead of re-simulating;
        they bind loopback only (the fronting router is the public
        surface). ``warm`` circuits are pre-warmed on their owning
        replica.
        """
        if n_replicas < 1:
            raise ClusterError("n_replicas must be >= 1")
        outcomes = await asyncio.gather(
            *(SpawnedReplica.spawn(
                f"replica-{index}", store_root=store_root,
                backend=backend, shards=shards, config=config,
                seed=seed, max_engines=max_engines,
                window_ms=window_ms, max_batch=max_batch,
                max_pending=max_pending, overflow=overflow,
                posterior_samples=posterior_samples,
                posterior_tolerance=posterior_tolerance, **kwargs)
              for index in range(n_replicas)),
            return_exceptions=True)
        failures = [o for o in outcomes if isinstance(o, BaseException)]
        if failures:
            # Don't orphan the siblings that did come up.
            await asyncio.gather(
                *(replica.aclose() for replica in outcomes
                  if isinstance(replica, Replica)),
                return_exceptions=True)
            raise failures[0]
        cluster = cls(outcomes, vnodes=vnodes)
        try:
            for circuit_name in warm:
                await cluster.warm(circuit_name)
            # Seed the workers' sync introspection caches (warmed
            # circuits, queue depth) with a first health probe.
            await cluster.check_health()
        except BaseException:
            # A failed post-spawn step (bad warm name, ...) must not
            # orphan the worker processes we just started.
            await cluster.aclose()
            raise
        return cluster

    # ------------------------------------------------------------------
    # Routing + failover
    # ------------------------------------------------------------------
    def replica_for(self, circuit_name: str) -> Replica:
        """The live replica currently owning ``circuit_name``."""
        name = self.router.replica_for(circuit_name,
                                       exclude=frozenset(self.down))
        return self.replicas[name]

    def _mark_down(self, name: str) -> None:
        self.down.add(name)
        self.failovers += 1
        self._m_failovers.labels("unavailable").inc()
        self._m_up.labels(name).set(0.0)

    def _mark_slow(self, name: str, slow: Set[str]) -> None:
        slow.add(name)
        self.failovers += 1
        self._m_failovers.labels("timeout").inc()
        self._m_timeouts.labels(name).inc()

    async def _timed(self, name: str, awaitable: Awaitable[T]) -> T:
        started = time.perf_counter()
        try:
            return await awaitable
        finally:
            self._m_latency.labels(name).observe(
                time.perf_counter() - started)

    async def _call(self, circuit_name: str,
                    op: Callable[[Replica], Awaitable[T]]) -> T:
        """Run ``op`` on the owning replica, failing over along the
        ring when the transport reports the replica dead.

        A *timeout* (saturated-but-alive replica) re-routes only this
        request; the replica stays in the ring -- the health loop, not
        a slow response, decides whether it is dead.
        """
        if self._closed:
            raise ServiceError("cluster is closed")
        slow: Set[str] = set()
        for name in self.router.failover_order(circuit_name):
            if name in self.down or name in slow:
                continue
            try:
                return await self._timed(name, op(self.replicas[name]))
            except ReplicaTimeoutError:
                self._mark_slow(name, slow)
            except ReplicaUnavailableError:
                self._mark_down(name)
        raise ClusterError(
            f"no live replica for circuit {circuit_name!r} "
            f"(down: {sorted(self.down)}, timed out: {sorted(slow)})")

    async def submit(self, circuit_name: str,
                     responses: ResponseBatch) -> List[Diagnosis]:
        """Diagnose one request on the circuit's owning replica."""
        self.requests += 1
        self._m_requests.inc()
        return await self._call(
            circuit_name,
            lambda replica: replica.submit(circuit_name, responses))

    async def submit_posterior(self, circuit_name: str,
                               responses: ResponseBatch
                               ) -> List[PosteriorDiagnosis]:
        """Probabilistic diagnosis on the circuit's owning replica."""
        self.requests += 1
        self._m_requests.inc()
        return await self._call(
            circuit_name,
            lambda replica: replica.submit_posterior(circuit_name,
                                                     responses))

    async def submit_many(self, requests: Sequence[Tuple[str,
                                                         ResponseBatch]]
                          ) -> List[List[Diagnosis]]:
        """Diagnose a mixed-circuit burst: one wire call per replica.

        The burst is grouped by owning replica and forwarded as one
        ``submit_many`` each (which the replica serves with one
        classify per circuit); answers come back in input order. A
        replica dying mid-burst re-routes only its share.
        """
        return await self._burst(
            requests, lambda replica, share: replica.submit_many(share))

    async def submit_posterior_many(
            self, requests: Sequence[Tuple[str, ResponseBatch]]
    ) -> List[List[PosteriorDiagnosis]]:
        """Posterior burst: same per-replica grouping and failover as
        :meth:`submit_many`, answered with posterior probabilities."""
        return await self._burst(
            requests,
            lambda replica, share: replica.submit_posterior_many(share))

    async def _burst(self, requests: Sequence[Tuple[str, ResponseBatch]],
                     send) -> List[List]:
        """Group a burst by owning replica, forward each share through
        ``send(replica, share)``, and reassemble in input order."""
        if self._closed:
            raise ServiceError("cluster is closed")
        if not requests:
            return []
        self.requests += len(requests)
        self.bursts += 1
        self._m_requests.inc(len(requests))
        self._m_bursts.inc()
        results: List[Optional[List]] = [None] * len(requests)
        pending: List[Tuple[int, Tuple[str, ResponseBatch]]] = \
            list(enumerate(requests))
        slow: Set[str] = set()   # timed out: reroute burst-locally only
        while pending:
            groups: Dict[str, List[Tuple[int, Tuple[str,
                                                    ResponseBatch]]]] = {}
            for index, request in pending:
                name = self.router.replica_for(
                    request[0], exclude=frozenset(self.down | slow))
                groups.setdefault(name, []).append((index, request))
            pending = []
            outcomes = await asyncio.gather(
                *(self._timed(name, send(
                    self.replicas[name],
                    [request for _, request in items]))
                  for name, items in groups.items()),
                return_exceptions=True)
            for (name, items), outcome in zip(groups.items(), outcomes):
                if isinstance(outcome, ReplicaTimeoutError):
                    self._mark_slow(name, slow)
                    pending.extend(items)
                elif isinstance(outcome, ReplicaUnavailableError):
                    self._mark_down(name)
                    pending.extend(items)
                elif isinstance(outcome, BaseException):
                    raise outcome
                elif len(outcome) != len(items):
                    # A version-skewed/impostor server answered with
                    # the wrong batch count; treat as replica failure
                    # so the burst share fails over instead of
                    # silently returning None entries.
                    self._mark_down(name)
                    pending.extend(items)
                else:
                    for (index, _), batch in zip(items, outcome):
                        results[index] = batch
        return results                           # type: ignore[return-value]

    async def warm(self, circuit_name: str) -> None:
        """Warm a circuit's engine on its owning replica."""
        await self._call(circuit_name,
                         lambda replica: replica.warm(circuit_name))

    async def test_vector_hz(self, circuit_name: str
                             ) -> Tuple[float, ...]:
        return await self._call(
            circuit_name,
            lambda replica: replica.test_vector_hz(circuit_name))

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    async def check_health(self) -> Dict[str, bool]:
        """Probe every replica; update the down-set both ways.

        A revived replica rejoins the ring (its circuits route home
        again -- deterministic engines make that transparent); a dead
        one is marked down before it ever fails a live request.
        """
        names = list(self.replicas)
        verdicts = await asyncio.gather(
            *(self.replicas[name].healthy() for name in names),
            return_exceptions=True)
        # A probe that *raises* (rather than answering False) is a
        # sick replica too -- and must never abort the other probes.
        health = {name: verdict is True
                  for name, verdict in zip(names, verdicts)}
        for name, alive in health.items():
            if alive:
                self.down.discard(name)
            else:
                self.down.add(name)
            self._m_up.labels(name).set(1.0 if alive else 0.0)
        return health

    async def run_health_loop(self, interval: float = 5.0) -> None:
        """Probe forever (cancel to stop); the CLI runs this as a
        background task next to ``serve_forever``."""
        while True:
            await asyncio.sleep(interval)
            try:
                await self.check_health()
            except Exception:    # noqa: BLE001 -- monitoring must survive
                continue

    # ------------------------------------------------------------------
    # Introspection (the HTTP front surface)
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return sum(replica.queue_depth
                   for replica in self.replicas.values())

    def warmed_circuits(self) -> Tuple[str, ...]:
        warmed: Set[str] = set()
        for replica in self.replicas.values():
            warmed.update(replica.warmed_circuits())
        return tuple(sorted(warmed))

    def known_circuits(self) -> Dict[str, Tuple[str, ...]]:
        registered: Set[str] = set()
        for replica in self.replicas.values():
            registered.update(replica.registered_circuits())
        return {"registered": tuple(sorted(registered)),
                "benchmarks": tuple(sorted(BENCHMARK_CIRCUITS)),
                "warmed": self.warmed_circuits()}

    @staticmethod
    def _merge_snapshots(snapshots: Sequence[Dict[str, object]]
                         ) -> Dict[str, object]:
        """Sum reachable replica snapshots into one service-shaped view.

        Counters add; ``peak_queue_depth`` takes the max (peaks do not
        sum across independent queues); the batch-size histogram and
        the per-circuit breakdown merge bucket- and circuit-wise.
        Latency quantiles are per-replica statistics and deliberately
        stay out of the merged view.
        """
        merged: Dict[str, object] = {
            "requests": 0, "responses_diagnosed": 0,
            "total_latency_seconds": 0.0, "evictions": 0,
            "coalesced_batches": 0, "coalesced_requests": 0,
            "rejections": 0, "peak_queue_depth": 0,
            "batch_size_histogram": {}, "per_circuit": {},
        }
        for snapshot in snapshots:
            for key in ("requests", "responses_diagnosed",
                        "total_latency_seconds", "evictions",
                        "coalesced_batches", "coalesced_requests",
                        "rejections"):
                merged[key] += snapshot.get(key, 0)    # type: ignore
            merged["peak_queue_depth"] = max(
                merged["peak_queue_depth"],             # type: ignore
                snapshot.get("peak_queue_depth", 0))
            histogram: Dict[str, int] = merged["batch_size_histogram"]
            for bucket, count in snapshot.get(
                    "batch_size_histogram", {}).items():
                # In-process snapshots carry int bucket keys, wire
                # snapshots str ones (JSON); normalise to str.
                histogram[str(bucket)] = \
                    histogram.get(str(bucket), 0) + count
            per_circuit: Dict[str, Dict[str, float]] = \
                merged["per_circuit"]
            for circuit, stats in snapshot.get("per_circuit",
                                               {}).items():
                into = per_circuit.setdefault(circuit, {})
                for key, value in stats.items():
                    if key == "mean_latency_seconds":
                        continue     # recomputed below, means don't sum
                    into[key] = into.get(key, 0) + value
        for stats in merged["per_circuit"].values():      # type: ignore
            requests = stats.get("requests", 0)
            stats["mean_latency_seconds"] = \
                stats.get("total_latency_seconds", 0.0) / requests \
                if requests else 0.0
        merged["batch_size_histogram"] = dict(sorted(
            merged["batch_size_histogram"].items(),       # type: ignore
            key=lambda item: int(item[0])))
        return merged

    async def stats_snapshot(self) -> Dict[str, object]:
        """Cluster counters, a merged service view, and every
        replica's own snapshot keyed by replica id."""
        names = list(self.replicas)
        snapshots = await asyncio.gather(
            *(self.replicas[name].stats_snapshot() for name in names),
            return_exceptions=True)
        per_replica: Dict[str, object] = {}
        for name, snapshot in zip(names, snapshots):
            per_replica[name] = {"unreachable": True} \
                if isinstance(snapshot, BaseException) else snapshot
        return {
            "cluster": {
                "replicas": len(self.replicas),
                "down": sorted(self.down),
                "requests": self.requests,
                "bursts": self.bursts,
                "failovers": self.failovers,
            },
            "merged": self._merge_snapshots(
                [snapshot for snapshot in snapshots
                 if not isinstance(snapshot, BaseException)]),
            "per_replica": per_replica,
        }

    async def metrics_text(self) -> str:
        """Cluster metrics plus every replica's scrape, merged.

        Each reachable replica's ``/v1/metrics`` text is parsed, every
        sample is tagged with a ``replica`` label, and the result is
        re-rendered after the cluster's own registry. Unreachable
        replicas are skipped -- their ``repro_cluster_replica_up``
        gauge already reports the outage.
        """
        names = list(self.replicas)
        scrapes = await asyncio.gather(
            *(self.replicas[name].metrics_text() for name in names),
            return_exceptions=True)
        merged: Dict[str, Dict[str, object]] = {}
        for name, scrape in zip(names, scrapes):
            if isinstance(scrape, BaseException) or not scrape:
                continue
            try:
                families = telemetry.parse_exposition(scrape)
            except ValueError:
                continue          # malformed scrape: skip, don't 500
            for family_name, family in families.items():
                entry = merged.setdefault(
                    family_name, {"type": family["type"],
                                  "help": family["help"],
                                  "samples": []})
                for sample_name, labels, value in family["samples"]:
                    tagged = dict(labels)
                    tagged["replica"] = name
                    entry["samples"].append(
                        (sample_name, tagged, value))
        return self.registry.render() + telemetry.render_families(merged)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Refuse new requests, then close every replica."""
        self._closed = True
        await asyncio.gather(
            *(replica.aclose() for replica in self.replicas.values()),
            return_exceptions=True)
