"""Pluggable storage backends for the artifact store.

:class:`~repro.runtime.store.ArtifactStore` used to *be* a local
directory tree; production-scale serving needs the same content-addressed
artifact space to live in memory (tests, ephemeral replicas) or spread
across several roots/hosts. This module extracts that seam:

* :class:`StorageBackend` -- the protocol every backend implements:
  artifacts are immutable directories of files, addressed by
  ``(kind, key)`` where ``key`` is a SHA-256 content hash;
* :class:`LocalDirBackend` -- the original on-disk layout
  (``<root>/<kind>/<key[:2]>/<key>/``, rename-into-place publication),
  byte-compatible with every store root written before the refactor;
* :class:`InMemoryBackend` -- artifacts held as byte blobs in process
  memory (reads materialise through a scratch directory so the loaders'
  file-based code paths stay untouched);
* :class:`ShardedBackend` -- consistent-hash fan-out of artifact keys
  across N child backends with a rebalance-aware lookup: a miss on the
  owning shard falls back to the full ring, so growing or shrinking the
  shard set never loses access to already-written artifacts.

Every backend also carries the maintenance surface the serving fleet
needs: :meth:`~StorageBackend.disk_usage` accounting and
:meth:`~StorageBackend.prune` LRU-by-mtime eviction (reads touch the
artifact mtime, so recently used artifacts survive a prune).

:class:`HashRing` -- the consistent-hash primitive shared by
:class:`ShardedBackend` and the request router in
:mod:`repro.runtime.cluster` -- lives here too: placing *artifacts on
shards* and *circuits on replicas* is the same problem.
"""

from __future__ import annotations

import abc
import bisect
import hashlib
import os
import re
import shutil
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import (Callable, Dict, FrozenSet, Iterator, List,
                    Optional, Sequence, Tuple)

from ..errors import StoreError

__all__ = ["ArtifactRecord", "StorageBackend", "LocalDirBackend",
           "InMemoryBackend", "ShardedBackend", "HashRing"]

_KEY_PATTERN = re.compile(r"[0-9a-f]{64}")
_KIND_PATTERN = re.compile(r"[a-z][a-z0-9_-]*")


def check_slot(kind: str, key: str) -> None:
    """Reject anything that is not a plain kind + SHA-256 hex key.

    Keys address directories, so an unvalidated ``'../escape'`` could
    walk out of a backend's root.
    """
    if not _KEY_PATTERN.fullmatch(key or ""):
        raise StoreError(f"invalid artifact key {key!r}")
    if not _KIND_PATTERN.fullmatch(kind or ""):
        raise StoreError(f"invalid artifact kind {kind!r}")


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------
class HashRing:
    """Consistent-hash ring mapping string keys onto named nodes.

    Each node is placed at ``vnodes`` pseudo-random points on a 64-bit
    ring (SHA-256 of ``"<node>#<i>"``); a key routes to the first node
    clockwise of its own hash. Adding or removing one node therefore
    only remaps the keys that hashed to that node -- the property both
    artifact sharding and circuit->replica routing rely on.
    """

    def __init__(self, nodes: Sequence[str], vnodes: int = 64) -> None:
        if not nodes:
            raise StoreError("hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise StoreError(f"duplicate ring nodes in {list(nodes)}")
        if vnodes < 1:
            raise StoreError("vnodes must be >= 1")
        self.nodes: Tuple[str, ...] = tuple(nodes)
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for index in range(vnodes):
                points.append((self._point(f"{node}#{index}"), node))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    @staticmethod
    def _point(text: str) -> int:
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def node_for(self, key: str,
                 exclude: FrozenSet[str] = frozenset()) -> str:
        """The node owning ``key``, skipping any excluded nodes."""
        for node in self.nodes_for(key):
            if node not in exclude:
                return node
        raise StoreError(
            f"hash ring has no live node for {key!r} "
            f"(excluded: {sorted(exclude)})")

    def nodes_for(self, key: str) -> Iterator[str]:
        """Every distinct node in ring-walk order from ``key``.

        The first yielded node is the owner; the rest are the
        fallback/failover order (deterministic per key).
        """
        start = bisect.bisect_right(self._hashes, self._point(key))
        seen = set()
        for offset in range(len(self._points)):
            _, node = self._points[(start + offset) % len(self._points)]
            if node not in seen:
                seen.add(node)
                yield node


# ----------------------------------------------------------------------
# The backend protocol
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArtifactRecord:
    """One stored artifact, as seen by maintenance operations."""

    kind: str
    key: str
    n_bytes: int
    mtime: float


class StorageBackend(abc.ABC):
    """Where content-addressed artifacts physically live.

    An artifact is an immutable directory of files under ``(kind,
    key)``. The public methods validate the address then dispatch to
    the backend's ``_``-prefixed implementation, so every backend gets
    path-traversal protection for free.

    Contract:

    * :meth:`publish` is atomic -- readers never observe a partial
      artifact -- and first-writer-wins: both writers of one key
      produced identical bytes by construction, so the loser is simply
      discarded;
    * :meth:`open` returns a real directory path (loaders are
      file-based); backends without native directories materialise one;
    * reads touch the artifact's mtime, making :meth:`prune` a true
      LRU eviction.
    """

    @abc.abstractmethod
    def _open(self, kind: str, key: str) -> Optional[Path]: ...

    @abc.abstractmethod
    def _publish(self, kind: str, key: str,
                 populate: Callable[[Path], None]) -> bool: ...

    @abc.abstractmethod
    def _has(self, kind: str, key: str) -> bool: ...

    @abc.abstractmethod
    def _delete(self, kind: str, key: str) -> bool: ...

    @abc.abstractmethod
    def records(self) -> Iterator[ArtifactRecord]:
        """Every stored artifact (order unspecified)."""

    # -- validated public surface --------------------------------------
    def open(self, kind: str, key: str) -> Optional[Path]:
        """Directory of the artifact, or ``None`` on a miss."""
        check_slot(kind, key)
        return self._open(kind, key)

    def publish(self, kind: str, key: str,
                populate: Callable[[Path], None]) -> bool:
        """Write an artifact atomically via ``populate(scratch_dir)``.

        Returns ``True`` when this call created the artifact, ``False``
        when another writer already had (the scratch copy is dropped).
        """
        check_slot(kind, key)
        return self._publish(kind, key, populate)

    def has(self, kind: str, key: str) -> bool:
        check_slot(kind, key)
        return self._has(kind, key)

    def delete(self, kind: str, key: str) -> bool:
        """Remove one artifact; ``True`` if something was deleted."""
        check_slot(kind, key)
        return self._delete(kind, key)

    # -- maintenance ---------------------------------------------------
    def disk_usage(self) -> int:
        """Total bytes of artifact payload held by this backend."""
        return sum(record.n_bytes for record in self.records())

    def prune(self, max_bytes: int) -> Tuple[ArtifactRecord, ...]:
        """Evict least-recently-used artifacts until the backend holds
        at most ``max_bytes``; returns the evicted records.

        Duplicate physical copies of one ``(kind, key)`` (a sharded
        backend can hold them after a ring resize) are folded into one
        logical record -- ``delete`` removes every copy, so the fold
        keeps the byte accounting honest and stops the prune from
        over-evicting hot artifacts.
        """
        if max_bytes < 0:
            raise StoreError("max_bytes must be >= 0")
        logical: Dict[Tuple[str, str], ArtifactRecord] = {}
        for record in self.records():
            prior = logical.get((record.kind, record.key))
            if prior is not None:
                record = ArtifactRecord(
                    kind=record.kind, key=record.key,
                    n_bytes=prior.n_bytes + record.n_bytes,
                    mtime=max(prior.mtime, record.mtime))
            logical[(record.kind, record.key)] = record
        records = sorted(logical.values(),
                         key=lambda r: (r.mtime, r.kind, r.key))
        total = sum(record.n_bytes for record in records)
        evicted: List[ArtifactRecord] = []
        for record in records:
            if total <= max_bytes:
                break
            if self.delete(record.kind, record.key):
                total -= record.n_bytes
                evicted.append(record)
        return tuple(evicted)


# ----------------------------------------------------------------------
# Local directory backend (the original ArtifactStore layout)
# ----------------------------------------------------------------------
class LocalDirBackend(StorageBackend):
    """On-disk artifacts under ``<root>/<kind>/<key[:2]>/<key>/``.

    Byte-compatible with store roots written before the backend
    refactor: same layout, same rename-into-place atomic publication
    (a lost rename race discards the duplicate; concurrent readers only
    ever observe complete artifacts).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:
        return f"LocalDirBackend({str(self.root)!r})"

    def _slot(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / key

    def _open(self, kind: str, key: str) -> Optional[Path]:
        slot = self._slot(kind, key)
        if not slot.is_dir():
            return None
        try:                     # LRU bookkeeping; never worth failing a read
            os.utime(slot)
        except OSError:
            pass
        return slot

    def _publish(self, kind: str, key: str,
                 populate: Callable[[Path], None]) -> bool:
        slot = self._slot(kind, key)
        slot.parent.mkdir(parents=True, exist_ok=True)
        scratch = slot.parent / f".tmp-{key[:8]}-{uuid.uuid4().hex}"
        scratch.mkdir()
        try:
            populate(scratch)
            try:
                os.rename(scratch, slot)
                return True
            except OSError:
                if not slot.is_dir():
                    raise
                shutil.rmtree(scratch, ignore_errors=True)
                return False
        except BaseException:
            shutil.rmtree(scratch, ignore_errors=True)
            raise

    def _has(self, kind: str, key: str) -> bool:
        return self._slot(kind, key).is_dir()

    def _delete(self, kind: str, key: str) -> bool:
        slot = self._slot(kind, key)
        if not slot.is_dir():
            return False
        try:
            shutil.rmtree(slot)
        except FileNotFoundError:
            return False         # concurrent prune on a shared root won
        # The empty fan-out dir is left behind deliberately: removing
        # it would race a concurrent _publish that already mkdir'd it
        # but not yet created its scratch dir (shared-root fleets).
        # At most 256 empty prefix dirs per kind -- harmless.
        return True

    def records(self) -> Iterator[ArtifactRecord]:
        if not self.root.is_dir():
            return
        for kind_dir in sorted(self.root.iterdir()):
            if not kind_dir.is_dir() or \
                    not _KIND_PATTERN.fullmatch(kind_dir.name):
                continue
            for slot in sorted(kind_dir.glob("??/*")):
                if not slot.is_dir() or \
                        not _KEY_PATTERN.fullmatch(slot.name):
                    continue
                try:
                    n_bytes = sum(path.stat().st_size
                                  for path in slot.rglob("*")
                                  if path.is_file())
                    mtime = slot.stat().st_mtime
                except FileNotFoundError:
                    # A concurrent prune (another worker sharing this
                    # root) deleted the slot mid-scan: skip it.
                    continue
                yield ArtifactRecord(kind=kind_dir.name, key=slot.name,
                                     n_bytes=n_bytes, mtime=mtime)


# ----------------------------------------------------------------------
# In-memory backend
# ----------------------------------------------------------------------
class _MemoryArtifact:
    __slots__ = ("files", "mtime", "version")

    def __init__(self, files: Dict[str, bytes], version: int) -> None:
        self.files = files
        self.mtime = time.time()
        self.version = version


class InMemoryBackend(StorageBackend):
    """Artifacts held as byte blobs in process memory.

    Publication slurps the populated scratch directory into a
    ``{relative_path: bytes}`` map; reads materialise that map back
    into a lazily created scratch directory (cached per artifact), so
    the file-based loaders in :mod:`repro.runtime.store` work
    unchanged. Thread-safe; intended for tests and ephemeral replicas.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str], _MemoryArtifact] = {}
        self._materialised: Dict[Tuple[str, str], Tuple[int, Path]] = {}
        # Created eagerly: lazy creation would race concurrent
        # publishers, and the losing TemporaryDirectory's finalizer
        # would delete a scratch tree mid-populate.
        self._scratch = tempfile.TemporaryDirectory(
            prefix="repro-membackend-")
        self._version = 0
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return f"InMemoryBackend(<{len(self._entries)} artifacts>)"

    def _scratch_dir(self) -> Path:
        return Path(self._scratch.name)

    def _open(self, kind: str, key: str) -> Optional[Path]:
        with self._lock:
            entry = self._entries.get((kind, key))
            if entry is None:
                return None
            entry.mtime = time.time()
            cached = self._materialised.get((kind, key))
            if cached is not None and cached[0] == entry.version:
                return cached[1]
            slot = self._scratch_dir() / kind / f"{key}-{entry.version}"
            for name, payload in entry.files.items():
                path = slot / name
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_bytes(payload)
            self._materialised[(kind, key)] = (entry.version, slot)
            return slot

    def _publish(self, kind: str, key: str,
                 populate: Callable[[Path], None]) -> bool:
        scratch = Path(tempfile.mkdtemp(prefix="pub-",
                                        dir=self._scratch_dir()))
        try:
            populate(scratch)
            files = {
                str(path.relative_to(scratch)): path.read_bytes()
                for path in sorted(scratch.rglob("*")) if path.is_file()
            }
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        with self._lock:
            if (kind, key) in self._entries:     # first writer wins
                return False
            self._version += 1
            self._entries[(kind, key)] = _MemoryArtifact(files,
                                                         self._version)
            return True

    def _has(self, kind: str, key: str) -> bool:
        with self._lock:
            return (kind, key) in self._entries

    def _delete(self, kind: str, key: str) -> bool:
        with self._lock:
            entry = self._entries.pop((kind, key), None)
            cached = self._materialised.pop((kind, key), None)
        if cached is not None:
            shutil.rmtree(cached[1], ignore_errors=True)
        return entry is not None

    def records(self) -> Iterator[ArtifactRecord]:
        with self._lock:
            snapshot = [(kind, key, entry) for (kind, key), entry
                        in self._entries.items()]
        for kind, key, entry in snapshot:
            yield ArtifactRecord(
                kind=kind, key=key,
                n_bytes=sum(len(blob) for blob in entry.files.values()),
                mtime=entry.mtime)


# ----------------------------------------------------------------------
# Sharded backend
# ----------------------------------------------------------------------
class ShardedBackend(StorageBackend):
    """Consistent-hash fan-out of artifact keys over child backends.

    Each ``(kind, key)`` is owned by one child shard (via
    :class:`HashRing`); publication always lands on the owner. Lookup
    is *rebalance-aware*: a miss on the owner falls back to every other
    shard in ring-walk order, so artifacts written before a shard was
    added (or placed by a differently sized ring) remain reachable --
    only the small remapped fraction pays the extra probes, and only
    until it is re-published or pruned.
    """

    def __init__(self, shards: Sequence[StorageBackend],
                 vnodes: int = 64) -> None:
        if not shards:
            raise StoreError("ShardedBackend needs at least one shard")
        self.shards: Tuple[StorageBackend, ...] = tuple(shards)
        self._names = tuple(f"shard-{i}" for i in range(len(self.shards)))
        self._by_name = dict(zip(self._names, self.shards))
        self.ring = HashRing(self._names, vnodes=vnodes)

    def __repr__(self) -> str:
        return f"ShardedBackend({list(self.shards)!r})"

    def shard_for(self, kind: str, key: str) -> StorageBackend:
        """The child backend owning ``(kind, key)``."""
        check_slot(kind, key)
        return self._by_name[self.ring.node_for(f"{kind}/{key}")]

    def _walk(self, kind: str, key: str) -> Iterator[StorageBackend]:
        for name in self.ring.nodes_for(f"{kind}/{key}"):
            yield self._by_name[name]

    def _open(self, kind: str, key: str) -> Optional[Path]:
        for shard in self._walk(kind, key):
            slot = shard.open(kind, key)
            if slot is not None:
                return slot
        return None

    def _publish(self, kind: str, key: str,
                 populate: Callable[[Path], None]) -> bool:
        return self.shard_for(kind, key).publish(kind, key, populate)

    def _has(self, kind: str, key: str) -> bool:
        return any(shard.has(kind, key)
                   for shard in self._walk(kind, key))

    def _delete(self, kind: str, key: str) -> bool:
        # Rebalancing can leave stale copies on former owners; delete
        # everywhere so a prune really frees the space.
        return any([shard.delete(kind, key) for shard in self.shards])

    def records(self) -> Iterator[ArtifactRecord]:
        for shard in self.shards:
            yield from shard.records()


def coerce_backend(source: "str | Path | StorageBackend"
                   ) -> StorageBackend:
    """A backend from a path (local store root) or a backend as-is."""
    if isinstance(source, StorageBackend):
        return source
    if isinstance(source, (str, Path)):
        return LocalDirBackend(source)
    raise StoreError(
        f"expected a store root path or a StorageBackend, "
        f"got {type(source).__name__}")
