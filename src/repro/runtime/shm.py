"""Zero-copy shared memory for process-pool evaluation.

Thread pools only help the engine where BLAS drops the GIL; everything
else in the hot paths (trajectory assembly, conflict counting, python
orchestration) serialises on one core. Process pools fix that, but
naively they re-pickle the response surface -- easily megabytes -- into
every worker for every task. This module provides the missing piece:

* :class:`SharedArray` -- a numpy array backed by
  ``multiprocessing.shared_memory``. Created once by the parent,
  *pickled by handle* (segment name + shape + dtype, a few hundred
  bytes), attached zero-copy by every worker. Deterministic lifecycle:
  the creating side owns the segment and must :meth:`~SharedArray.unlink`
  it (context manager and GC finalizer both do); attaching sides only
  ever close their mapping.
* :class:`SharedSurface` -- a :class:`~repro.faults.surface.ResponseSurface`
  whose dense magnitude matrix and log-frequency grid live in shared
  segments. It *is a* ``ResponseSurface`` (same interpolation code on
  the same bytes), so sampling through it is bitwise-identical to the
  original surface.
* a **thread fallback**: when shared memory is unavailable (platform
  without ``/dev/shm``, sandboxed container, ``REPRO_DISABLE_SHM=1``),
  :func:`shm_available` reports False, :class:`SharedArray` degrades to
  a by-value wrapper and callers route work to thread pools instead --
  slower, never wrong.

CPython quirk worth knowing: ``SharedMemory`` registers every segment
with the ``resource_tracker`` even on *attach* (bpo-38119). Workers must
therefore never unlink or unregister -- under the default fork start
method parent and children share one tracker process, and the parent's
explicit ``unlink()`` clears the (deduplicated) entry for everyone while
keeping the tracker's crash safety net intact.

The ``repro_pool_*`` telemetry families (task counts, shm bytes,
worker startup/shutdown latency) also live here so every pool consumer
(GA scoring, posterior builds, dictionary builds) reports through one
vocabulary.
"""

from __future__ import annotations

import os
import time
import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from ..errors import ReproError
from ..faults.models import Fault
from ..faults.surface import ResponseSurface

__all__ = [
    "shm_available",
    "SharedArray",
    "SharedSurface",
    "resolve_executor",
    "record_pool_tasks",
    "observe_worker_start",
    "observe_worker_shutdown",
    "timed_pool",
]

#: Environment switch forcing the no-shm fallback path (used by the CI
#: no-shm leg and the fallback tests).
DISABLE_ENV = "REPRO_DISABLE_SHM"

_PROBED: Optional[bool] = None


def shm_available() -> bool:
    """Whether POSIX shared memory actually works here.

    Probes once per process by creating (and immediately unlinking) a
    tiny segment; ``REPRO_DISABLE_SHM=1`` forces False, which routes
    every pool consumer onto its thread fallback.
    """
    global _PROBED
    if os.environ.get(DISABLE_ENV, "").strip() not in ("", "0"):
        return False
    if _PROBED is None:
        try:
            from multiprocessing import shared_memory
            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _PROBED = True
        except Exception:
            _PROBED = False
    return _PROBED


def _close_quietly(shm) -> None:
    try:
        shm.close()
    except BufferError:
        # numpy views still alive; the mapping is freed at process
        # exit and the name (if any) was already unlinked.
        pass
    except OSError:
        pass


def _finalize_segment(shm, owner: bool) -> None:
    """GC backstop: owners unlink, attachers only close."""
    if owner:
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass
    _close_quietly(shm)


class SharedArray:
    """A numpy array in a shared-memory segment, pickled by handle.

    Owner side::

        shared = SharedArray.create(matrix)        # copies once
        pool.submit(task, shared)                  # ships ~100 bytes
        ...
        shared.unlink()                            # deterministic free

    Worker side: unpickling attaches to the existing segment and
    ``shared.array`` is a zero-copy view. Workers never unlink.

    When shared memory is unavailable the constructor degrades to a
    plain by-value wrapper (same API, pickles the data itself) so every
    caller keeps working -- the thread fallback path.
    """

    def __init__(self, shm, shape: Tuple[int, ...], dtype: np.dtype,
                 owner: bool, readonly: bool,
                 fallback: Optional[np.ndarray] = None) -> None:
        self._shm = shm
        self._shape = tuple(int(dim) for dim in shape)
        self._dtype = np.dtype(dtype)
        self._owner = bool(owner)
        self._readonly = bool(readonly)
        self._dead = False
        if shm is not None:
            self._array = np.ndarray(self._shape, dtype=self._dtype,
                                     buffer=shm.buf)
            self._finalizer = weakref.finalize(
                self, _finalize_segment, shm, owner)
        else:
            assert fallback is not None
            self._array = fallback
            self._finalizer = None
        if readonly:
            self._array.flags.writeable = False
        if owner and shm is not None:
            _segments_gauge().inc()
            _bytes_gauge().inc(float(self.nbytes))

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, array: np.ndarray, readonly: bool = True
               ) -> "SharedArray":
        """Copy ``array`` into a new shared segment (owner side)."""
        source = np.ascontiguousarray(array)
        if shm_available():
            from multiprocessing import shared_memory
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, source.nbytes))
            staging = np.ndarray(source.shape, dtype=source.dtype,
                                 buffer=shm.buf)
            staging[...] = source
            return cls(shm, source.shape, source.dtype, owner=True,
                       readonly=readonly)
        return cls(None, source.shape, source.dtype, owner=True,
                   readonly=readonly, fallback=source.copy())

    @classmethod
    def zeros(cls, shape: Tuple[int, ...], dtype=np.float64
              ) -> "SharedArray":
        """A writable all-zeros shared array (e.g. a pool output
        buffer every worker fills a disjoint slice of)."""
        shape = tuple(int(dim) for dim in shape)
        dtype = np.dtype(dtype)
        if shm_available():
            from multiprocessing import shared_memory
            nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, nbytes))
            out = cls(shm, shape, dtype, owner=True, readonly=False)
            out.array[...] = 0
            return out
        return cls(None, shape, dtype, owner=True, readonly=False,
                   fallback=np.zeros(shape, dtype=dtype))

    @classmethod
    def _attach(cls, name: str, shape: Tuple[int, ...], dtype_str: str,
                readonly: bool) -> "SharedArray":
        """Unpickle target: attach to an existing segment by name."""
        from multiprocessing import shared_memory
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, shape, np.dtype(dtype_str), owner=False,
                   readonly=readonly)

    @classmethod
    def _from_value(cls, array: np.ndarray, readonly: bool
                    ) -> "SharedArray":
        """Unpickle target for the no-shm by-value fallback."""
        return cls(None, array.shape, array.dtype, owner=False,
                   readonly=readonly, fallback=array)

    def __reduce__(self):
        if self._shm is None:
            data = self._array
            if self._readonly:
                data = np.asarray(data)
            return (SharedArray._from_value, (data, self._readonly))
        if self._dead:
            raise ReproError("cannot pickle an unlinked SharedArray")
        return (SharedArray._attach,
                (self._shm.name, self._shape, self._dtype.str,
                 self._readonly))

    # ------------------------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        if self._dead:
            raise ReproError("SharedArray used after unlink/close")
        return self._array

    @property
    def name(self) -> Optional[str]:
        """Segment name (None on the by-value fallback)."""
        return None if self._shm is None else self._shm.name

    @property
    def nbytes(self) -> int:
        return int(np.prod(self._shape, dtype=np.int64)) * \
            self._dtype.itemsize

    @property
    def is_shared(self) -> bool:
        return self._shm is not None

    def close(self) -> None:
        """Release this process's mapping (never removes the segment)."""
        if self._dead or self._shm is None:
            self._dead = True
            return
        if self._finalizer is not None:
            self._finalizer.detach()
        self._dead = True
        _close_quietly(self._shm)

    def unlink(self) -> None:
        """Remove the segment (owner side). Idempotent."""
        if self._dead:
            return
        self._dead = True
        if self._shm is None:
            return
        if self._finalizer is not None:
            self._finalizer.detach()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            _segments_gauge().inc(-1.0)
            _bytes_gauge().inc(-float(self.nbytes))
        _close_quietly(self._shm)

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()


# ----------------------------------------------------------------------
# Shared response surface
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _SharedEntry:
    """Dictionary-entry stand-in carrying only the fault metadata the
    trajectory builder reads when signatures are injected."""

    fault: Fault


class _SharedDictionary:
    """Lightweight fault-dictionary proxy behind a shared surface.

    Exposes exactly what downstream surface consumers touch without the
    per-entry response payloads: ``entries`` (fault metadata only),
    ``labels`` and the frequency grid.
    """

    def __init__(self, faults: Tuple[Fault, ...],
                 freqs_hz: np.ndarray) -> None:
        self.entries: Tuple[_SharedEntry, ...] = tuple(
            _SharedEntry(fault) for fault in faults)
        self.freqs_hz = freqs_hz
        self.labels: Tuple[str, ...] = tuple(
            fault.label for fault in faults)


class SharedSurface(ResponseSurface):
    """A response surface whose dense tensors live in shared memory.

    ``SharedSurface.publish(surface)`` copies the magnitude matrix and
    log-frequency grid into shared segments once; pickling ships only
    the segment handles plus the (small) fault metadata, and workers
    attach zero-copy. Because this *is a* ``ResponseSurface`` running
    the inherited interpolation over the same bytes, ``sample_db`` /
    ``golden_db`` / ``signatures`` results are bitwise-identical to the
    published surface.
    """

    def __init__(self, log_f: SharedArray, matrix: SharedArray,
                 labels: Tuple[str, ...], faults: Tuple[Fault, ...],
                 freqs_hz: np.ndarray) -> None:
        # Deliberately no super().__init__: the parent constructor
        # derives these tensors from a full FaultDictionary; here they
        # arrive precomputed in shared segments.
        self._shared_log_f = log_f
        self._shared_matrix = matrix
        self._log_f = log_f.array
        self._matrix_db = matrix.array
        self._labels = tuple(labels)
        self._faults = tuple(faults)
        self._freqs_hz = np.asarray(freqs_hz, dtype=float)
        self.dictionary = _SharedDictionary(self._faults, self._freqs_hz)

    @classmethod
    def publish(cls, surface: ResponseSurface) -> "SharedSurface":
        """Copy ``surface``'s tensors into shared memory (owner side)."""
        log_f = SharedArray.create(surface.log_freqs, readonly=True)
        matrix = SharedArray.create(surface.matrix_db, readonly=True)
        faults = tuple(entry.fault
                       for entry in surface.dictionary.entries)
        return cls(log_f, matrix, surface.labels, faults,
                   np.asarray(surface.dictionary.freqs_hz, dtype=float))

    def __reduce__(self):
        return (SharedSurface,
                (self._shared_log_f, self._shared_matrix, self._labels,
                 self._faults, self._freqs_hz))

    @property
    def nbytes(self) -> int:
        return self._shared_log_f.nbytes + self._shared_matrix.nbytes

    @property
    def is_shared(self) -> bool:
        return self._shared_matrix.is_shared

    def close(self) -> None:
        """Worker side: drop this process's mappings."""
        self._shared_log_f.close()
        self._shared_matrix.close()

    def unlink(self) -> None:
        """Owner side: remove the segments. Idempotent."""
        self._shared_log_f.unlink()
        self._shared_matrix.unlink()

    def __enter__(self) -> "SharedSurface":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()


# ----------------------------------------------------------------------
# Executor resolution + pool telemetry
# ----------------------------------------------------------------------
def resolve_executor(executor: str) -> str:
    """Map a requested executor kind onto what this host supports.

    ``"process"`` needs working shared memory (the zero-copy surface
    and shared output buffers are what make processes pay off -- and
    under fork a by-value output buffer would silently go copy-on-write
    and lose worker writes), so without it the request degrades to
    ``"thread"``.
    """
    if executor not in ("process", "thread"):
        raise ReproError(
            f"executor must be 'process' or 'thread', got {executor!r}")
    if executor == "process" and not shm_available():
        return "thread"
    return executor


_FAMILIES = None


def _families():
    """The ``repro_pool_*`` metric families on the process registry."""
    global _FAMILIES
    if _FAMILIES is None:
        from .telemetry import DEFAULT_SECONDS_BUCKETS, REGISTRY
        _FAMILIES = {
            "tasks": REGISTRY.counter(
                "repro_pool_tasks_total",
                "Tasks submitted to worker pools.",
                labelnames=("kind",)),
            "segments": REGISTRY.gauge(
                "repro_pool_shm_segments",
                "Live shared-memory segments owned by this process."),
            "bytes": REGISTRY.gauge(
                "repro_pool_shm_bytes",
                "Bytes in live shared-memory segments owned by this "
                "process."),
            "start": REGISTRY.histogram(
                "repro_pool_worker_start_seconds",
                "Pool construction + first-worker warm-up latency.",
                labelnames=("kind",),
                buckets=DEFAULT_SECONDS_BUCKETS),
            "shutdown": REGISTRY.histogram(
                "repro_pool_worker_shutdown_seconds",
                "Pool shutdown latency.",
                labelnames=("kind",),
                buckets=DEFAULT_SECONDS_BUCKETS),
        }
    return _FAMILIES


def _segments_gauge():
    return _families()["segments"]


def _bytes_gauge():
    return _families()["bytes"]


def record_pool_tasks(kind: str, count: int = 1) -> None:
    _families()["tasks"].labels(kind).inc(float(count))


def observe_worker_start(kind: str, seconds: float) -> None:
    _families()["start"].labels(kind).observe(float(seconds))


def observe_worker_shutdown(kind: str, seconds: float) -> None:
    _families()["shutdown"].labels(kind).observe(float(seconds))


def _noop() -> None:
    """Warm-up barrier task (module-level so process pools pickle it)."""


@contextmanager
def timed_pool(kind: str, factory: Callable[[], object],
               warmup: bool = True) -> Iterator[object]:
    """Run an executor with startup/shutdown latency telemetry.

    ``factory`` builds the executor; a no-op warm-up task forces the
    first worker up so the recorded startup latency includes the
    fork/spawn cost instead of charging it to the first real task.
    """
    started = time.perf_counter()
    pool = factory()
    if warmup:
        pool.submit(_noop).result()
    observe_worker_start(kind, time.perf_counter() - started)
    try:
        yield pool
    finally:
        stopping = time.perf_counter()
        pool.shutdown()
        observe_worker_shutdown(kind, time.perf_counter() - stopping)
