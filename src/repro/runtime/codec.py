"""Transport-agnostic JSON codec for the diagnosis serving layer.

One wire format, independent of the transport that carries it: the
stdlib HTTP front (:mod:`repro.runtime.server`) uses it, but so can a
message queue or a unix-socket RPC layer. Requests carry a circuit name
plus an ``(N, F)`` matrix of measured dB magnitudes at the circuit's
test vector; responses carry one diagnosis dict per row.

Floats survive the round trip exactly: ``json`` serialises Python
floats with ``repr`` (shortest round-trip form), so
``decode_response(encode_response(d)) == d`` bitwise -- the property
the serving equivalence tests rely on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

import numpy as np

from ..diagnosis.classifier import Diagnosis
from ..diagnosis.posterior import PosteriorDiagnosis
from ..errors import CodecError

__all__ = [
    "DiagnoseRequest",
    "decode_request",
    "encode_request",
    "decode_request_many",
    "encode_request_many",
    "decode_response",
    "encode_response",
    "decode_response_many",
    "encode_response_many",
    "diagnosis_to_dict",
    "diagnosis_from_dict",
    "decode_posterior_request",
    "decode_posterior_response",
    "encode_posterior_response",
    "decode_posterior_response_many",
    "encode_posterior_response_many",
    "posterior_to_dict",
    "posterior_from_dict",
    "encode_error",
    "encode_stats",
]

Payload = Union[bytes, bytearray, str]


def _loads(payload: Payload) -> object:
    if isinstance(payload, (bytes, bytearray)):
        try:
            payload = payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"payload is not valid UTF-8: {exc}") from exc
    try:
        return json.loads(payload)
    except json.JSONDecodeError as exc:
        raise CodecError(f"payload is not valid JSON: {exc}") from exc


def _dumps(obj: object) -> bytes:
    try:
        return json.dumps(obj, separators=(",", ":"),
                          allow_nan=False).encode("utf-8")
    except ValueError as exc:
        raise CodecError(
            f"payload contains a non-finite float outside a tokenised "
            f"field: {exc}") from exc


# Non-finite floats have no JSON literal. Fields that may legitimately
# carry them (margins, ranking distances) ride as explicit string
# tokens, so an infinite margin and a missing one are distinguishable
# on the wire. NaN is *rejected at encode time* -- a NaN margin is a
# bug upstream, and silently shipping it previously round-tripped into
# "infinitely confident" (null -> +inf). The decoder still accepts a
# "nan" token (and legacy null as +inf) from other producers.
_NONFINITE_TOKENS = {
    "inf": float("inf"),
    "+inf": float("inf"),
    "-inf": float("-inf"),
    "nan": float("nan"),
}


def _float_to_wire(value: float, field: str) -> Union[float, str]:
    value = float(value)
    if np.isnan(value):
        raise CodecError(
            f"{field} is NaN; refusing to encode (upstream bug)")
    if np.isinf(value):
        return "inf" if value > 0.0 else "-inf"
    return value


def _float_from_wire(value: object, field: str) -> float:
    if value is None:
        # Legacy encoders shipped null for any non-finite value.
        return float("inf")
    if isinstance(value, str):
        try:
            return _NONFINITE_TOKENS[value.lower()]
        except KeyError:
            raise CodecError(
                f"{field} has unknown non-finite token {value!r}"
            ) from None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CodecError(
            f"{field} must be a number or a non-finite token, got "
            f"{type(value).__name__}")
    return float(value)


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiagnoseRequest:
    """A decoded diagnosis request: one circuit, N measured rows."""

    circuit: str
    magnitudes_db: np.ndarray    # (N, F) float matrix

    @property
    def n_rows(self) -> int:
        return int(self.magnitudes_db.shape[0])


def _as_wire_matrix(magnitudes_db) -> np.ndarray:
    """Validate an outgoing (N, F) magnitude matrix.

    Only numeric matrices ride the wire: ``FrequencyResponse`` objects
    (accepted by the in-process submit paths) must be sampled to dB
    rows first -- a clear :class:`CodecError` beats a ``TypeError``
    from deep inside NumPy.
    """
    try:
        matrix = np.asarray(magnitudes_db, dtype=float)
    except (TypeError, ValueError) as exc:
        raise CodecError(
            "magnitudes_db must be a numeric (N, F) matrix of dB "
            "magnitudes; FrequencyResponse objects cannot ride the "
            "wire -- sample them at the circuit's test vector first"
        ) from exc
    if matrix.ndim != 2:
        raise CodecError(
            f"magnitudes_db must be a 2-D (N, F) matrix, got shape "
            f"{matrix.shape}")
    return matrix


def encode_request(circuit: str,
                   magnitudes_db: Union[np.ndarray, Sequence[Sequence[float]]]
                   ) -> bytes:
    """Serialise a diagnosis request to its JSON wire form."""
    matrix = _as_wire_matrix(magnitudes_db)
    return _dumps({"circuit": circuit,
                   "magnitudes_db": matrix.tolist()})


def decode_request(payload: Payload) -> DiagnoseRequest:
    """Parse and validate a diagnosis request payload."""
    obj = _loads(payload)
    return _request_from_obj(obj)


def _request_from_obj(obj: object) -> DiagnoseRequest:
    if not isinstance(obj, dict):
        raise CodecError("request must be a JSON object")
    circuit = obj.get("circuit")
    if not isinstance(circuit, str) or not circuit:
        raise CodecError("request needs a non-empty string 'circuit'")
    rows = obj.get("magnitudes_db")
    if not isinstance(rows, list) or not rows:
        raise CodecError(
            "request needs a non-empty 'magnitudes_db' list of rows")
    try:
        matrix = np.asarray(rows, dtype=float)
    except (TypeError, ValueError) as exc:
        raise CodecError(
            f"magnitudes_db is not a numeric matrix: {exc}") from exc
    if matrix.ndim != 2:
        raise CodecError(
            f"magnitudes_db must be rectangular 2-D, got shape "
            f"{matrix.shape}")
    if not np.all(np.isfinite(matrix)):
        raise CodecError("magnitudes_db contains non-finite values")
    return DiagnoseRequest(circuit=circuit, magnitudes_db=matrix)


def encode_request_many(
        requests: Sequence[tuple]) -> bytes:
    """Serialise a mixed-circuit burst of ``(circuit, magnitudes_db)``
    pairs to its JSON wire form (``POST /v1/diagnose-many``)."""
    items = []
    for circuit, magnitudes_db in requests:
        items.append({"circuit": circuit,
                      "magnitudes_db":
                          _as_wire_matrix(magnitudes_db).tolist()})
    if not items:
        raise CodecError("burst must hold at least one request")
    return _dumps({"requests": items})


def decode_request_many(payload: Payload) -> List[DiagnoseRequest]:
    """Parse and validate a mixed-circuit burst payload."""
    obj = _loads(payload)
    if not isinstance(obj, dict):
        raise CodecError("burst must be a JSON object")
    items = obj.get("requests")
    if not isinstance(items, list) or not items:
        raise CodecError("burst needs a non-empty 'requests' list")
    return [_request_from_obj(item) for item in items]


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def diagnosis_to_dict(diagnosis: Diagnosis) -> Dict[str, object]:
    """JSON-ready dict for one diagnosis (bitwise round-trippable).

    Margins and ranking distances can be legitimately infinite (a
    single-trajectory set; components masked out by the
    perpendicular-foot rule), so they ride as explicit ``"inf"`` /
    ``"-inf"`` tokens; a NaN in either is rejected with
    :class:`CodecError` rather than silently shipped.
    """
    return {
        "component": diagnosis.component,
        "estimated_deviation": diagnosis.estimated_deviation,
        "distance": diagnosis.distance,
        "perpendicular": diagnosis.perpendicular,
        "margin": _float_to_wire(diagnosis.margin, "margin"),
        "point": list(diagnosis.point),
        "ranking": [[name, _float_to_wire(distance,
                                          f"ranking[{name}]")]
                    for name, distance in diagnosis.ranking],
    }


def diagnosis_from_dict(obj: Dict[str, object]) -> Diagnosis:
    """Rebuild a :class:`Diagnosis` from its wire dict."""
    try:
        return Diagnosis(
            component=str(obj["component"]),
            estimated_deviation=float(obj["estimated_deviation"]),
            distance=float(obj["distance"]),
            perpendicular=bool(obj["perpendicular"]),
            margin=_float_from_wire(obj["margin"], "margin"),
            point=tuple(float(x) for x in obj["point"]),
            ranking=tuple(
                (str(name), _float_from_wire(distance,
                                             f"ranking[{name}]"))
                for name, distance in obj["ranking"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed diagnosis dict: {exc}") from exc


def encode_response(diagnoses: Sequence[Diagnosis]) -> bytes:
    """Serialise a list of diagnoses to the JSON wire form."""
    return _dumps({"diagnoses": [diagnosis_to_dict(d)
                                 for d in diagnoses]})


def decode_response(payload: Payload) -> List[Diagnosis]:
    """Parse a diagnosis response payload back into objects."""
    obj = _loads(payload)
    if not isinstance(obj, dict) or "diagnoses" not in obj:
        raise CodecError("response must be an object with 'diagnoses'")
    items = obj["diagnoses"]
    if not isinstance(items, list):
        raise CodecError("'diagnoses' must be a list")
    return [diagnosis_from_dict(item) for item in items]


def encode_response_many(
        batches: Sequence[Sequence[Diagnosis]]) -> bytes:
    """Serialise one diagnosis list per burst request."""
    return _dumps({"batches": [[diagnosis_to_dict(d) for d in batch]
                               for batch in batches]})


def decode_response_many(payload: Payload) -> List[List[Diagnosis]]:
    """Parse a burst response back into per-request diagnosis lists."""
    obj = _loads(payload)
    if not isinstance(obj, dict) or "batches" not in obj:
        raise CodecError("response must be an object with 'batches'")
    batches = obj["batches"]
    if not isinstance(batches, list) or \
            not all(isinstance(batch, list) for batch in batches):
        raise CodecError("'batches' must be a list of lists")
    return [[diagnosis_from_dict(item) for item in batch]
            for batch in batches]


# ----------------------------------------------------------------------
# Posterior (probabilistic tier)
# ----------------------------------------------------------------------
def decode_posterior_request(payload: Payload
                             ) -> tuple:
    """Parse a ``/v1/diagnose-posterior`` body.

    Accepts the single-request shape (``{"circuit", "magnitudes_db"}``,
    byte-compatible with ``encode_request``) and the burst shape
    (``{"requests": [...]}``, byte-compatible with
    ``encode_request_many``). Returns ``(requests, is_burst)``.
    """
    obj = _loads(payload)
    if not isinstance(obj, dict):
        raise CodecError("request must be a JSON object")
    if "requests" in obj:
        items = obj["requests"]
        if not isinstance(items, list) or not items:
            raise CodecError("burst needs a non-empty 'requests' list")
        return [_request_from_obj(item) for item in items], True
    return [_request_from_obj(obj)], False


def posterior_to_dict(diagnosis: PosteriorDiagnosis
                      ) -> Dict[str, object]:
    """JSON-ready dict for one posterior diagnosis (bitwise
    round-trippable; probabilities/gains are always finite)."""
    return {
        "component": diagnosis.component,
        "probabilities": [[name, probability]
                          for name, probability
                          in diagnosis.probabilities],
        "entropy_bits": diagnosis.entropy_bits,
        "expected_deviation": diagnosis.expected_deviation,
        "test_ranking": [[freq_hz, gain_bits]
                         for freq_hz, gain_bits
                         in diagnosis.test_ranking],
        "n_samples": diagnosis.n_samples,
    }


def posterior_from_dict(obj: Dict[str, object]) -> PosteriorDiagnosis:
    """Rebuild a :class:`PosteriorDiagnosis` from its wire dict."""
    try:
        return PosteriorDiagnosis(
            component=str(obj["component"]),
            probabilities=tuple(
                (str(name), float(probability))
                for name, probability in obj["probabilities"]),
            entropy_bits=float(obj["entropy_bits"]),
            expected_deviation=float(obj["expected_deviation"]),
            test_ranking=tuple(
                (float(freq_hz), float(gain_bits))
                for freq_hz, gain_bits in obj["test_ranking"]),
            n_samples=int(obj["n_samples"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(
            f"malformed posterior diagnosis dict: {exc}") from exc


def encode_posterior_response(
        diagnoses: Sequence[PosteriorDiagnosis]) -> bytes:
    """Serialise a list of posterior diagnoses to the wire form."""
    return _dumps({"posteriors": [posterior_to_dict(d)
                                  for d in diagnoses]})


def decode_posterior_response(payload: Payload
                              ) -> List[PosteriorDiagnosis]:
    """Parse a posterior response payload back into objects."""
    obj = _loads(payload)
    if not isinstance(obj, dict) or "posteriors" not in obj:
        raise CodecError("response must be an object with 'posteriors'")
    items = obj["posteriors"]
    if not isinstance(items, list):
        raise CodecError("'posteriors' must be a list")
    return [posterior_from_dict(item) for item in items]


def encode_posterior_response_many(
        batches: Sequence[Sequence[PosteriorDiagnosis]]) -> bytes:
    """Serialise one posterior list per burst request."""
    return _dumps({"batches": [[posterior_to_dict(d) for d in batch]
                               for batch in batches]})


def decode_posterior_response_many(payload: Payload
                                   ) -> List[List[PosteriorDiagnosis]]:
    """Parse a posterior burst response into per-request lists."""
    obj = _loads(payload)
    if not isinstance(obj, dict) or "batches" not in obj:
        raise CodecError("response must be an object with 'batches'")
    batches = obj["batches"]
    if not isinstance(batches, list) or \
            not all(isinstance(batch, list) for batch in batches):
        raise CodecError("'batches' must be a list of lists")
    return [[posterior_from_dict(item) for item in batch]
            for batch in batches]


# ----------------------------------------------------------------------
# Errors and stats
# ----------------------------------------------------------------------
def encode_error(message: str, kind: str = "error") -> bytes:
    """Serialise an error payload (`kind` names the exception class)."""
    return _dumps({"error": {"kind": kind, "message": message}})


def encode_stats(snapshot: Dict[str, object]) -> bytes:
    """Serialise a :meth:`ServiceStats.snapshot` dict."""
    return _dumps(snapshot)
