"""Transport-agnostic JSON codec for the diagnosis serving layer.

One wire format, independent of the transport that carries it: the
stdlib HTTP front (:mod:`repro.runtime.server`) uses it, but so can a
message queue or a unix-socket RPC layer. Requests carry a circuit name
plus an ``(N, F)`` matrix of measured dB magnitudes at the circuit's
test vector; responses carry one diagnosis dict per row.

Floats survive the round trip exactly: ``json`` serialises Python
floats with ``repr`` (shortest round-trip form), so
``decode_response(encode_response(d)) == d`` bitwise -- the property
the serving equivalence tests rely on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

import numpy as np

from ..diagnosis.classifier import Diagnosis
from ..errors import CodecError

__all__ = [
    "DiagnoseRequest",
    "decode_request",
    "encode_request",
    "decode_response",
    "encode_response",
    "diagnosis_to_dict",
    "diagnosis_from_dict",
    "encode_error",
    "encode_stats",
]

Payload = Union[bytes, bytearray, str]


def _loads(payload: Payload) -> object:
    if isinstance(payload, (bytes, bytearray)):
        try:
            payload = payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"payload is not valid UTF-8: {exc}") from exc
    try:
        return json.loads(payload)
    except json.JSONDecodeError as exc:
        raise CodecError(f"payload is not valid JSON: {exc}") from exc


def _dumps(obj: object) -> bytes:
    return json.dumps(obj, separators=(",", ":"),
                      allow_nan=False).encode("utf-8")


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiagnoseRequest:
    """A decoded diagnosis request: one circuit, N measured rows."""

    circuit: str
    magnitudes_db: np.ndarray    # (N, F) float matrix

    @property
    def n_rows(self) -> int:
        return int(self.magnitudes_db.shape[0])


def encode_request(circuit: str,
                   magnitudes_db: Union[np.ndarray, Sequence[Sequence[float]]]
                   ) -> bytes:
    """Serialise a diagnosis request to its JSON wire form."""
    matrix = np.asarray(magnitudes_db, dtype=float)
    if matrix.ndim != 2:
        raise CodecError(
            f"magnitudes_db must be a 2-D (N, F) matrix, got shape "
            f"{matrix.shape}")
    return _dumps({"circuit": circuit,
                   "magnitudes_db": matrix.tolist()})


def decode_request(payload: Payload) -> DiagnoseRequest:
    """Parse and validate a diagnosis request payload."""
    obj = _loads(payload)
    if not isinstance(obj, dict):
        raise CodecError("request must be a JSON object")
    circuit = obj.get("circuit")
    if not isinstance(circuit, str) or not circuit:
        raise CodecError("request needs a non-empty string 'circuit'")
    rows = obj.get("magnitudes_db")
    if not isinstance(rows, list) or not rows:
        raise CodecError(
            "request needs a non-empty 'magnitudes_db' list of rows")
    try:
        matrix = np.asarray(rows, dtype=float)
    except (TypeError, ValueError) as exc:
        raise CodecError(
            f"magnitudes_db is not a numeric matrix: {exc}") from exc
    if matrix.ndim != 2:
        raise CodecError(
            f"magnitudes_db must be rectangular 2-D, got shape "
            f"{matrix.shape}")
    if not np.all(np.isfinite(matrix)):
        raise CodecError("magnitudes_db contains non-finite values")
    return DiagnoseRequest(circuit=circuit, magnitudes_db=matrix)


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def diagnosis_to_dict(diagnosis: Diagnosis) -> Dict[str, object]:
    """JSON-ready dict for one diagnosis (bitwise round-trippable)."""
    # A single-trajectory set has an infinite margin; JSON has no inf,
    # so it rides as null and decodes back to inf.
    margin = diagnosis.margin if np.isfinite(diagnosis.margin) else None
    return {
        "component": diagnosis.component,
        "estimated_deviation": diagnosis.estimated_deviation,
        "distance": diagnosis.distance,
        "perpendicular": diagnosis.perpendicular,
        "margin": margin,
        "point": list(diagnosis.point),
        "ranking": [[name, distance]
                    for name, distance in diagnosis.ranking],
    }


def diagnosis_from_dict(obj: Dict[str, object]) -> Diagnosis:
    """Rebuild a :class:`Diagnosis` from its wire dict."""
    try:
        margin = obj["margin"]
        return Diagnosis(
            component=str(obj["component"]),
            estimated_deviation=float(obj["estimated_deviation"]),
            distance=float(obj["distance"]),
            perpendicular=bool(obj["perpendicular"]),
            margin=float("inf") if margin is None else float(margin),
            point=tuple(float(x) for x in obj["point"]),
            ranking=tuple((str(name), float(distance))
                          for name, distance in obj["ranking"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed diagnosis dict: {exc}") from exc


def encode_response(diagnoses: Sequence[Diagnosis]) -> bytes:
    """Serialise a list of diagnoses to the JSON wire form."""
    return _dumps({"diagnoses": [diagnosis_to_dict(d)
                                 for d in diagnoses]})


def decode_response(payload: Payload) -> List[Diagnosis]:
    """Parse a diagnosis response payload back into objects."""
    obj = _loads(payload)
    if not isinstance(obj, dict) or "diagnoses" not in obj:
        raise CodecError("response must be an object with 'diagnoses'")
    items = obj["diagnoses"]
    if not isinstance(items, list):
        raise CodecError("'diagnoses' must be a list")
    return [diagnosis_from_dict(item) for item in items]


# ----------------------------------------------------------------------
# Errors and stats
# ----------------------------------------------------------------------
def encode_error(message: str, kind: str = "error") -> bytes:
    """Serialise an error payload (`kind` names the exception class)."""
    return _dumps({"error": {"kind": kind, "message": message}})


def encode_stats(snapshot: Dict[str, object]) -> bytes:
    """Serialise a :meth:`ServiceStats.snapshot` dict."""
    return _dumps(snapshot)
