"""``repro-serve``: command-line launcher for the diagnosis server.

Single process::

    repro-serve --port 8080 --store-root /var/cache/repro \
                --warm rc_lowpass --warm sallen_key_lowpass

Consistent-hash cluster (spawns N worker processes, fronts them with a
:class:`~repro.runtime.cluster.ClusterService` router on the public
port)::

    repro-serve --port 8080 --replicas 3 --store-root /var/cache/repro

The storage backend behind the artifact store is selectable:
``--backend local`` (default; ``--store-root`` directory),
``--backend sharded`` (``--shards`` local shards under the root, keys
consistent-hashed across them) or ``--backend memory`` (ephemeral).
Workers announce their bound address on stdout as
``REPRO-SERVE LISTENING <host> <port>`` -- with ``--port 0`` that is
how a parent (or a script) discovers the ephemeral port.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import logging
import sys
from pathlib import Path
from typing import Optional

from ..core.config import PipelineConfig
from ..diagnosis.posterior import PosteriorConfig
from ..errors import ReproError
from ..sim.engine import EngineSpec
from .backends import InMemoryBackend, LocalDirBackend, ShardedBackend
from .cluster import LISTENING_PREFIX, WORKER_DEFAULTS, ClusterService
from .server import AsyncDiagnosisService, DiagnosisHTTPServer
from .service import DiagnosisService
from .store import ArtifactStore

__all__ = ["main", "build_parser"]


def _engine_arg(text: str) -> EngineSpec:
    try:
        return EngineSpec.parse(text)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve fault-trajectory diagnosis over HTTP.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=8080,
                        help="bind port; 0 picks an ephemeral port "
                             "(default: %(default)s)")
    parser.add_argument("--replicas", type=int, default=1,
                        help="1 serves in-process; N>1 spawns N worker "
                             "processes behind a consistent-hash "
                             "router (default: %(default)s)")
    parser.add_argument("--store-root", type=Path, default=None,
                        help="artifact-store root directory (omit to "
                             "serve without a store)")
    parser.add_argument("--backend",
                        choices=("local", "memory", "sharded"),
                        default="local",
                        help="artifact storage backend "
                             "(default: %(default)s)")
    parser.add_argument("--shards", type=int,
                        default=WORKER_DEFAULTS["shards"],
                        help="shard count for --backend sharded "
                             "(default: %(default)s)")
    parser.add_argument("--max-engines", type=int,
                        default=WORKER_DEFAULTS["max_engines"],
                        help="per-process warmed-engine LRU capacity "
                             "(default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0,
                        help="GA seed for engine warm-ups; every "
                             "replica must share it (default: "
                             "%(default)s)")
    parser.add_argument("--config", choices=("paper", "quick"),
                        default="paper",
                        help="pipeline configuration preset "
                             "(default: %(default)s)")
    parser.add_argument("--config-json", default=None, metavar="JSON",
                        help="PipelineConfig as inline JSON or "
                             "@path/to/file.json (overrides --config)")
    parser.add_argument("--engine", type=_engine_arg,
                        default=None, metavar="SPEC",
                        help="simulation engine for circuit warm-ups: "
                             "'batched' (stamp-once dense solves), "
                             "'scalar' (reference path) or 'factored' "
                             "(factor-once Sherman-Morrison-Woodbury "
                             "low-rank updates, dense fallback on "
                             "ill-conditioned faults), with optional "
                             "knobs as 'factored:cond_limit=1e6,"
                             "sparse=true'; overrides the "
                             "--config/--config-json engine field "
                             "(default: use the config's engine)")
    parser.add_argument("--ga-workers", type=int, default=None,
                        help="GA population-scoring pool size for "
                             "circuit warm-ups; overrides the config's "
                             "ga_workers field (default: use the "
                             "config; 0/1 = serial)")
    parser.add_argument("--executor", choices=("process", "thread"),
                        default=None,
                        help="worker-pool kind for GA scoring and "
                             "parallel dictionary builds: 'process' "
                             "(zero-copy shared-memory response "
                             "surface, true multi-core; degrades to "
                             "threads without shm) or 'thread'; "
                             "overrides the config's executor fields "
                             "(default: use the config)")
    parser.add_argument("--window-ms", type=float,
                        default=WORKER_DEFAULTS["window_ms"],
                        help="coalescing window in milliseconds "
                             "(default: %(default)s)")
    parser.add_argument("--max-batch", type=int,
                        default=WORKER_DEFAULTS["max_batch"],
                        help="row budget per coalesced batch "
                             "(default: %(default)s)")
    parser.add_argument("--max-pending", type=int,
                        default=WORKER_DEFAULTS["max_pending"],
                        help="backpressure bound on queued requests "
                             "(default: %(default)s)")
    parser.add_argument("--overflow", choices=("wait", "reject"),
                        default=WORKER_DEFAULTS["overflow"],
                        help="behaviour past --max-pending "
                             "(default: %(default)s)")
    parser.add_argument("--posterior-samples", type=int,
                        default=WORKER_DEFAULTS["posterior_samples"],
                        help="Monte-Carlo worlds per posterior build "
                             "(POST /v1/diagnose-posterior; default: "
                             "%(default)s)")
    parser.add_argument("--posterior-tolerance", type=float,
                        default=WORKER_DEFAULTS["posterior_tolerance"],
                        help="relative component tolerance for the "
                             "posterior sampling (0.05 = 5%%; "
                             "default: %(default)s)")
    parser.add_argument("--warm", action="append", default=[],
                        metavar="CIRCUIT",
                        help="circuit to warm at startup (repeatable)")
    parser.add_argument("--health-interval", type=float, default=5.0,
                        help="cluster replica health-probe period in "
                             "seconds (default: %(default)s)")
    parser.add_argument("--log-level",
                        choices=("debug", "info", "warning", "error"),
                        default="info",
                        help="logging threshold on stderr "
                             "(default: %(default)s)")
    parser.add_argument("--access-log", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="log one line per served request "
                             "(default: on)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit access-log lines as structured "
                             "JSON instead of plain text")
    return parser


def configure_logging(args: argparse.Namespace) -> None:
    """Wire stderr logging for the server process.

    The ``repro.access`` logger gets its own bare-message handler (an
    access line -- plain or JSON -- is already fully formatted), while
    everything else goes through the root logger's standard format.
    """
    logging.basicConfig(
        stream=sys.stderr,
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(levelname)s %(name)s %(message)s")
    access = logging.getLogger("repro.access")
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    access.addHandler(handler)
    access.propagate = False


def load_config(args: argparse.Namespace) -> PipelineConfig:
    if args.config_json:
        text = args.config_json
        if text.startswith("@"):
            text = Path(text[1:]).read_text()
        config = PipelineConfig.from_json_dict(json.loads(text))
    else:
        config = PipelineConfig.paper() if args.config == "paper" \
            else PipelineConfig.quick()
    if getattr(args, "engine", None):
        config = dataclasses.replace(config, engine=args.engine)
    parallelism = config.parallelism
    if getattr(args, "ga_workers", None) is not None:
        parallelism = dataclasses.replace(parallelism,
                                          ga_workers=args.ga_workers)
    if getattr(args, "executor", None):
        parallelism = dataclasses.replace(parallelism,
                                          executor=args.executor,
                                          ga_executor=args.executor)
    if parallelism is not config.parallelism:
        config = dataclasses.replace(config, parallelism=parallelism)
    return config


def make_store(args: argparse.Namespace) -> Optional[ArtifactStore]:
    if args.backend == "memory":
        return ArtifactStore(backend=InMemoryBackend())
    if args.store_root is None:
        if args.backend == "sharded":
            # Never silently drop an explicitly requested disk-backed
            # backend: serving without a store re-simulates every cold
            # circuit.
            raise SystemExit("--backend sharded requires --store-root")
        return None
    if args.backend == "sharded":
        return ArtifactStore(backend=ShardedBackend(
            [LocalDirBackend(args.store_root / f"shard-{index}")
             for index in range(args.shards)]))
    return ArtifactStore(args.store_root)


async def _amain(args: argparse.Namespace) -> None:
    if args.replicas < 1:
        raise SystemExit("--replicas must be >= 1")
    health_task: Optional[asyncio.Task] = None
    if args.replicas == 1:
        service = DiagnosisService(config=load_config(args),
                                   store=make_store(args),
                                   max_engines=args.max_engines,
                                   seed=args.seed,
                                   posterior=PosteriorConfig(
                                       n_samples=args.posterior_samples,
                                       tolerance=args.posterior_tolerance,
                                       seed=args.seed))
        front = AsyncDiagnosisService(
            service, window_seconds=args.window_ms / 1e3,
            max_batch=args.max_batch, max_pending=args.max_pending,
            overflow=args.overflow)
    else:
        # Validate the storage flags here too: a misconfiguration must
        # fail with the clear message, not as N opaque worker-spawn
        # failures.
        make_store(args)
        front = await ClusterService.spawn(
            args.replicas,
            store_root=args.store_root, backend=args.backend,
            shards=args.shards, config=load_config(args),
            seed=args.seed, max_engines=args.max_engines,
            window_ms=args.window_ms, max_batch=args.max_batch,
            max_pending=args.max_pending, overflow=args.overflow,
            posterior_samples=args.posterior_samples,
            posterior_tolerance=args.posterior_tolerance)
        if args.health_interval > 0:
            health_task = asyncio.ensure_future(
                front.run_health_loop(args.health_interval))
    server = DiagnosisHTTPServer(front, host=args.host, port=args.port,
                                 access_log=args.access_log,
                                 log_json=args.log_json)
    # Everything after the spawn runs under the finally: a startup
    # failure (port already bound, bad --warm name) must tear the
    # worker processes down with it, not orphan them.
    try:
        await server.start()
        host, port = server.address
        # The machine-readable announcement parents parse (see
        # SpawnedReplica.spawn); humans get the mode detail after it.
        print(f"{LISTENING_PREFIX} {host} {port}", flush=True)
        mode = "single process" if args.replicas == 1 else \
            f"{args.replicas}-replica cluster"
        print(f"repro-serve: {mode} on http://{host}:{port}",
              flush=True)
        for circuit_name in args.warm:
            await front.warm(circuit_name)
        await server.serve_forever()
    finally:
        if health_task is not None:
            health_task.cancel()
        await server.aclose()


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(args)
    try:
        asyncio.run(_amain(args))
    except KeyboardInterrupt:
        pass
    except (ReproError, OSError, ValueError) as exc:
        # Startup failures (port in use, bad --warm name, malformed
        # --config-json) exit non-zero with one line, not a traceback.
        print(f"repro-serve: error: {exc}", file=sys.stderr,
              flush=True)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
