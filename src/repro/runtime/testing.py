"""Shared scaffolding for the serving test suites and benchmarks.

Tiny utilities that both ``tests/`` and ``benchmarks/`` need and that
must stay byte-for-byte identical between them (a drift would silently
desynchronise what the benchmarks measure from what the tests prove).
Not part of the public serving API.
"""

from __future__ import annotations

import numpy as np

__all__ = ["noisy_golden_rows"]


def noisy_golden_rows(service, circuit: str, count: int,
                      seed: int) -> np.ndarray:
    """Measured-looking request rows for a warmed circuit.

    The circuit's golden dB magnitudes at its test vector, plus a few
    dB of seeded Gaussian noise per row -- the standard request shape
    the serving equivalence tests and throughput benchmarks drive.
    """
    diagnoser = service._engine(circuit).diagnoser
    golden_db = diagnoser._golden_sample_db()
    rng = np.random.default_rng(seed)
    return golden_db[None, :] + rng.normal(
        0.0, 3.0, size=(count, golden_db.shape[0]))
