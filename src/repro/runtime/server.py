"""Async serving front: request coalescing over :class:`DiagnosisService`.

The paper's end goal is an online diagnoser: measured frequency
responses arrive concurrently and must be classified against the
fault-trajectory dictionary at interactive latency. Classification is
throughput-bound (the batch diagnoser amortises its fixed NumPy cost
over rows), so the win is *micro-batching*: concurrent requests for the
same circuit are coalesced into one
:meth:`~repro.runtime.batch.BatchDiagnoser.classify_points` call and the
results sliced back per request.

Equivalence guarantee
---------------------
A coalesced flush converts every request to signature points with the
same code path a lone ``submit`` uses
(:meth:`BatchDiagnoser.signatures`), concatenates the points, and
classifies once. Every classification operation is row-independent, so
each request's diagnoses are **bitwise-identical** to what a sequential
:meth:`DiagnosisService.submit` would have returned -- the property
tests in ``tests/test_serving.py`` pin this down across circuits, batch
sizes and arrival interleavings.

Knobs
-----
``window_seconds``
    Micro-batching window: how long the first request of a batch waits
    for company before the flush fires.
``max_batch``
    Row budget per coalesced batch: reaching it flushes immediately
    (no window wait).
``max_pending`` / ``overflow``
    Backpressure: with more than ``max_pending`` requests queued or in
    flight, new submits either wait for capacity (``"wait"``, default)
    or fail fast with :class:`ServiceOverloadedError` (``"reject"``).

A minimal stdlib HTTP front (:class:`DiagnosisHTTPServer`, asyncio
streams -- no new runtime dependencies) exposes the service over the
JSON codec in :mod:`repro.runtime.codec`.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..diagnosis.classifier import Diagnosis
from ..diagnosis.posterior import PosteriorDiagnosis
from ..errors import (ClusterError, CodecError, ServiceError,
                      ServiceOverloadedError)
from . import codec, telemetry
from .batch import ResponseBatch
from .service import DiagnosisService

__all__ = ["AsyncDiagnosisService", "DiagnosisHTTPServer", "serve"]

_OVERFLOW_KINDS = ("wait", "reject")

#: Queue-key prefix separating posterior batches from hard-classifier
#: batches: both tiers share the coalescing machinery but must never
#: share a flush ("\x00" cannot appear in a circuit name).
_POSTERIOR_PREFIX = "posterior\x00"


def _count_rows(responses: ResponseBatch) -> int:
    """Rows a request contributes to a batch, without converting it."""
    if isinstance(responses, np.ndarray):
        if responses.ndim != 2:
            raise ServiceError(
                f"expected an (N, F) magnitude matrix, got shape "
                f"{responses.shape}")
        return int(responses.shape[0])
    try:
        return len(responses)                      # type: ignore[arg-type]
    except TypeError as exc:
        raise ServiceError(
            "responses must be an (N, F) array or a sequence of "
            "FrequencyResponse objects") from exc


class _Pending:
    """One queued request: its raw responses and the result future."""

    __slots__ = ("responses", "rows", "future", "enqueued_at")

    def __init__(self, responses: ResponseBatch, rows: int,
                 future: "asyncio.Future[List[Diagnosis]]") -> None:
        self.responses = responses
        self.rows = rows
        self.future = future
        self.enqueued_at = time.perf_counter()


class _CircuitQueue:
    """Pending requests for one circuit plus the window timer."""

    __slots__ = ("items", "rows", "timer")

    def __init__(self) -> None:
        self.items: List[_Pending] = []
        self.rows = 0
        self.timer: Optional["asyncio.Task[None]"] = None


class AsyncDiagnosisService:
    """Awaitable, coalescing front over a :class:`DiagnosisService`.

    Single-loop object: construct and use it from one running asyncio
    event loop. The wrapped :class:`DiagnosisService` stays fully usable
    from other threads (its engine cache and stats are thread-safe);
    engine warm-ups triggered by async requests run on the loop's
    default thread pool so the loop never blocks on a pipeline build.

    Parameters
    ----------
    service:
        The synchronous service to front. Built from
        ``service_kwargs`` (forwarded to :class:`DiagnosisService`)
        when omitted.
    window_seconds:
        Micro-batching window (seconds). ``0.0`` still coalesces
        whatever arrives within one loop iteration.
    max_batch:
        Flush as soon as a circuit's queued rows reach this budget.
    max_pending:
        Backpressure bound on requests queued or in flight.
    overflow:
        ``"wait"`` parks new submits until capacity frees;
        ``"reject"`` raises :class:`ServiceOverloadedError` instead.
    eager_flush:
        Adaptive windowing (default on): flush as soon as one full
        event-loop pass produces no new arrivals for the circuit, so
        closed-loop clients never stall on the timer; the window stays
        the upper bound. Set ``False`` to always wait the full window
        (maximises coalescing for time-spread open-loop arrivals).
    executor:
        Optional ``concurrent.futures.Executor`` to run coalesced
        classify calls on. Default ``None`` classifies inline on the
        loop (classification is microseconds-scale; inline avoids the
        thread hop). Engine warm-ups always run on the loop's default
        executor regardless.
    """

    def __init__(self, service: Optional[DiagnosisService] = None, *,
                 window_seconds: float = 0.002, max_batch: int = 64,
                 max_pending: int = 1024, overflow: str = "wait",
                 eager_flush: bool = True, executor=None,
                 **service_kwargs) -> None:
        if service is None:
            service = DiagnosisService(**service_kwargs)
        elif service_kwargs:
            raise ServiceError(
                "pass either a prebuilt service or DiagnosisService "
                "kwargs, not both")
        if window_seconds < 0.0:
            raise ServiceError("window_seconds must be >= 0")
        if max_batch < 1:
            raise ServiceError("max_batch must be >= 1")
        if max_pending < 1:
            raise ServiceError("max_pending must be >= 1")
        if overflow not in _OVERFLOW_KINDS:
            raise ServiceError(
                f"overflow must be one of {_OVERFLOW_KINDS}, "
                f"got {overflow!r}")
        self.service = service
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.overflow = overflow
        self.eager_flush = eager_flush
        self._executor = executor
        self._queues: Dict[str, _CircuitQueue] = {}
        self._inflight: Set["asyncio.Task[None]"] = set()
        self._pending = 0
        self._waiters = 0        # submits parked on backpressure
        self._capacity = asyncio.Condition()
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection / passthrough
    # ------------------------------------------------------------------
    @property
    def stats(self):
        return self.service.stats

    @property
    def queue_depth(self) -> int:
        """Requests currently queued or in flight."""
        return self._pending

    def register(self, name: str, info) -> None:
        self.service.register(name, info)

    # The serving-front surface the HTTP layer programs against --
    # identical on :class:`~repro.runtime.cluster.ClusterService`, so
    # one :class:`DiagnosisHTTPServer` can front either. (Async where
    # a cluster must gather from remote replicas.)
    async def stats_snapshot(self) -> Dict[str, object]:
        return self.service.stats.snapshot()

    async def metrics_text(self) -> str:
        """Prometheus exposition text for ``GET /v1/metrics``."""
        return self.service.metrics_text()

    def known_circuits(self) -> Dict[str, Tuple[str, ...]]:
        return self.service.known_circuits()

    def warmed_circuits(self) -> Tuple[str, ...]:
        return self.service.warmed_circuits

    async def warm(self, circuit_name: str):
        """Warm a circuit without blocking the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.service.warm,
                                          circuit_name)

    async def test_vector_hz(self, circuit_name: str) -> Tuple[float, ...]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self.service.test_vector_hz, circuit_name)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(self, circuit_name: str,
                     responses: ResponseBatch) -> List[Diagnosis]:
        """Diagnose a batch of measured responses (awaitable).

        Concurrent submits for the same circuit are coalesced into one
        batched classify; results are bitwise-identical to sequential
        :meth:`DiagnosisService.submit` calls.
        """
        if self._closed:
            raise ServiceError("service is closed")
        if not self.service.has_circuit(circuit_name):
            # Fail before any per-circuit queue state is allocated, so
            # a stream of bogus names cannot grow _queues unboundedly.
            raise ServiceError(
                f"unknown circuit {circuit_name!r}; register() it "
                f"first")
        rows = _count_rows(responses)
        with telemetry.TRACER.span("service.submit",
                                   circuit=circuit_name, rows=rows):
            return await self._enqueue(circuit_name, responses, rows)

    async def submit_posterior(self, circuit_name: str,
                               responses: ResponseBatch
                               ) -> List[PosteriorDiagnosis]:
        """Probabilistic diagnosis of a batch of responses (awaitable).

        The async face of
        :meth:`DiagnosisService.diagnose_posterior`: concurrent
        posterior submits for the same circuit coalesce into one
        ``diagnose_points`` call (posterior batches never share a flush
        with hard-classifier batches). Diagnosis is row-independent, so
        results are bitwise-identical to sequential calls.
        """
        if self._closed:
            raise ServiceError("service is closed")
        if not self.service.has_circuit(circuit_name):
            raise ServiceError(
                f"unknown circuit {circuit_name!r}; register() it "
                f"first")
        rows = _count_rows(responses)
        with telemetry.TRACER.span("service.submit_posterior",
                                   circuit=circuit_name, rows=rows):
            return await self._enqueue(
                _POSTERIOR_PREFIX + circuit_name, responses, rows)

    async def submit_posterior_many(
            self, requests: Sequence[Tuple[str, ResponseBatch]]
    ) -> List[List[PosteriorDiagnosis]]:
        """Posterior burst; one diagnosis list per request (see
        :meth:`submit_many` for the coalescing/failure contract)."""
        outcomes = await asyncio.gather(
            *(self.submit_posterior(circuit_name, responses)
              for circuit_name, responses in requests),
            return_exceptions=True)
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
        return list(outcomes)

    async def _enqueue(self, queue_key: str, responses: ResponseBatch,
                       rows: int):
        """Admit one request into a coalescing queue; await its result."""
        await self._admit()
        loop = asyncio.get_running_loop()
        item = _Pending(responses, rows, loop.create_future())
        queue = self._queues.get(queue_key)
        if queue is None:
            queue = self._queues.setdefault(queue_key, _CircuitQueue())
        queue.items.append(item)
        queue.rows += rows
        stats = self.service.stats
        stats.gauge_queue_depth(self._pending)
        if self._pending > stats.peak_queue_depth:
            # lock only on a new peak
            stats.observe_queue_depth(self._pending)
        if queue.rows >= self.max_batch:
            self._start_flush(queue_key)
        elif queue.timer is None:
            queue.timer = loop.create_task(
                self._window_timer(queue_key))
        return await item.future

    async def submit_many(self, requests: Sequence[Tuple[str,
                                                         ResponseBatch]]
                          ) -> List[List[Diagnosis]]:
        """Submit a mixed-circuit burst; one diagnosis list per request.

        Every ``(circuit_name, responses)`` pair is enqueued in the
        same event-loop pass, so the coalescer groups the burst into
        (at most) one classify call per distinct circuit -- the async
        face of :meth:`DiagnosisService.submit_many`. Failures stay
        per-request internally (a bad entry never poisons its peers'
        classifications); the call then re-raises the first failure,
        after every request has settled so no result future is left
        unretrieved.
        """
        outcomes = await asyncio.gather(
            *(self.submit(circuit_name, responses)
              for circuit_name, responses in requests),
            return_exceptions=True)
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
        return list(outcomes)

    async def _admit(self) -> None:
        if self._pending < self.max_pending:
            self._pending += 1
            return
        if self.overflow == "reject":
            self.service.stats.record_rejection()
            raise ServiceOverloadedError(
                f"{self._pending} requests pending "
                f"(max_pending={self.max_pending})")
        self._waiters += 1
        try:
            async with self._capacity:
                while self._pending >= self.max_pending:
                    await self._capacity.wait()
                self._pending += 1
        finally:
            self._waiters -= 1

    async def _settle(self, count: int) -> None:
        self._pending -= count
        self.service.stats.gauge_queue_depth(self._pending)
        async with self._capacity:
            self._capacity.notify_all()

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    async def _window_timer(self, queue_key: str) -> None:
        queue = self._queues.get(queue_key)
        if queue is None:
            return
        try:
            if self.eager_flush:
                # Adaptive window: give every ready task one full loop
                # pass to enqueue; flush as soon as arrivals go quiet
                # (or the window expires). Closed-loop clients thus
                # never stall on the timer, while a burst still
                # coalesces completely.
                loop = asyncio.get_running_loop()
                deadline = loop.time() + self.window_seconds
                seen = queue.rows
                while True:
                    await asyncio.sleep(0)
                    if queue.rows == seen or loop.time() >= deadline:
                        break
                    seen = queue.rows
            else:
                await asyncio.sleep(self.window_seconds)
        except asyncio.CancelledError:
            return
        self._start_flush(queue_key, from_timer=True)

    def _start_flush(self, queue_key: str, *,
                     from_timer: bool = False) -> None:
        queue = self._queues.get(queue_key)
        if queue is None:
            return
        timer, queue.timer = queue.timer, None
        if timer is not None and not from_timer:
            timer.cancel()
        if not queue.items:
            return
        items, queue.items, queue.rows = queue.items, [], 0
        if queue_key.startswith(_POSTERIOR_PREFIX):
            circuit_name = queue_key[len(_POSTERIOR_PREFIX):]
            coroutine = self._run_posterior_batch(circuit_name, items)
        else:
            coroutine = self._run_batch(queue_key, items)
        task = asyncio.get_running_loop().create_task(coroutine)
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    def _stack_signatures(self, diagnoser, items: Sequence[_Pending]
                          ) -> Tuple[List[_Pending], Optional[np.ndarray]]:
        """Convert each live request to signature points and stack them.

        Conversion failures (wrong width, missing golden, ...) fail only
        the offending request's future, never its batch peers.
        """
        live = [item for item in items
                if not item.future.done()]   # skip cancelled requests
        if not live:
            return live, None
        # Fast path: every request is already a float64 (n, F) matrix of
        # the right width -- concatenate the raw rows and convert once.
        # signatures() is elementwise/row-independent, so this is
        # bitwise-identical to converting per request.
        dimension = diagnoser.trajectories.mapper.dimension
        if len(live) > 1 and all(
                isinstance(item.responses, np.ndarray)
                and item.responses.dtype == np.float64
                and item.responses.ndim == 2
                and item.responses.shape[1] == dimension
                for item in live):
            raw = np.concatenate([item.responses for item in live],
                                 axis=0)
            try:
                return live, diagnoser.signatures(raw)
            except Exception as exc:     # noqa: BLE001 -- shared fault
                # e.g. missing golden response: every request is
                # equally affected.
                for item in live:
                    item.future.set_exception(exc)
                return [], None
        points: List[np.ndarray] = []
        converted_live: List[_Pending] = []
        for item in live:
            try:
                converted = diagnoser.signatures(item.responses)
            except Exception as exc:     # noqa: BLE001 -- per-request fault
                item.future.set_exception(exc)
                continue
            converted_live.append(item)
            points.append(converted)
        if not converted_live:
            return converted_live, None
        if len(points) == 1:
            return converted_live, points[0]
        return converted_live, np.concatenate(points, axis=0)

    async def _run_batch(self, circuit_name: str,
                         items: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        try:
            try:
                engine = self.service._engine_if_warm(circuit_name)
                if engine is None:
                    # Cold miss: the pipeline build must not block the
                    # loop. The per-circuit build lock inside _engine
                    # dedupes racing warm-ups.
                    engine = await loop.run_in_executor(
                        None, self.service._engine, circuit_name)
            except Exception as exc:     # noqa: BLE001 -- shared fault
                for item in items:
                    if not item.future.done():
                        item.future.set_exception(exc)
                return
            live, stacked = self._stack_signatures(engine.diagnoser,
                                                   items)
            if not live:
                return
            try:
                if self._executor is None:
                    diagnoses = engine.diagnoser.classify_points(stacked)
                else:
                    diagnoses = await loop.run_in_executor(
                        self._executor, engine.diagnoser.classify_points,
                        stacked)
            except Exception as exc:     # noqa: BLE001 -- shared fault
                for item in live:
                    if not item.future.done():
                        item.future.set_exception(exc)
                return
            finished = time.perf_counter()
            offset = 0
            records: List[Tuple[int, float]] = []
            for item in live:
                part = diagnoses[offset:offset + item.rows]
                offset += item.rows
                if not item.future.done():
                    item.future.set_result(part)
                records.append((item.rows, finished - item.enqueued_at))
            self.service.stats.record_coalesced(
                circuit_name, records, n_rows=int(stacked.shape[0]))
        finally:
            await self._settle(len(items))

    async def _run_posterior_batch(self, circuit_name: str,
                                   items: List[_Pending]) -> None:
        """Flush one coalesced posterior batch (probabilistic tier)."""
        loop = asyncio.get_running_loop()
        try:
            try:
                engine = self.service._engine_if_warm(circuit_name)
                posterior = None if engine is None else engine.posterior
                if posterior is None:
                    # Cold miss on the engine or its posterior tier: the
                    # pipeline build / Monte-Carlo sweep must not block
                    # the loop.
                    engine, posterior = await loop.run_in_executor(
                        None, self.service._posterior, circuit_name)
            except Exception as exc:     # noqa: BLE001 -- shared fault
                for item in items:
                    if not item.future.done():
                        item.future.set_exception(exc)
                return
            live, stacked = self._stack_signatures(engine.diagnoser,
                                                   items)
            if not live:
                return
            try:
                if self._executor is None:
                    results = posterior.diagnose_points(stacked)
                else:
                    results = await loop.run_in_executor(
                        self._executor, posterior.diagnose_points,
                        stacked)
            except Exception as exc:     # noqa: BLE001 -- shared fault
                for item in live:
                    if not item.future.done():
                        item.future.set_exception(exc)
                return
            finished = time.perf_counter()
            offset = 0
            records: List[Tuple[int, float]] = []
            for item in live:
                part = results[offset:offset + item.rows]
                offset += item.rows
                if not item.future.done():
                    item.future.set_result(part)
                records.append((item.rows, finished - item.enqueued_at))
            self.service.stats.record_posterior(
                circuit_name, records,
                [result.entropy_bits for result in results])
        finally:
            await self._settle(len(items))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self, circuit_name: Optional[str] = None) -> None:
        """Force pending batches out immediately (skip the window).

        A circuit name flushes both its hard-classifier and posterior
        queues.
        """
        keys = [circuit_name, _POSTERIOR_PREFIX + circuit_name] \
            if circuit_name is not None else list(self._queues)
        for key in keys:
            self._start_flush(key)

    async def drain(self) -> None:
        """Flush everything and wait until no request is in flight.

        Covers submits parked on backpressure too: drain only returns
        once they have been admitted, flushed and answered.
        """
        while True:
            self.flush()
            tasks = list(self._inflight)
            if not tasks and self._waiters == 0 and \
                    not any(q.items for q in self._queues.values()):
                return
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            else:
                await asyncio.sleep(0)

    async def aclose(self) -> None:
        """Refuse new submits, then drain in-flight work."""
        self._closed = True
        await self.drain()


# ----------------------------------------------------------------------
# Minimal stdlib HTTP front
# ----------------------------------------------------------------------
_HTTP_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
                 405: "Method Not Allowed", 413: "Payload Too Large",
                 431: "Request Header Fields Too Large",
                 500: "Internal Server Error",
                 503: "Service Unavailable"}

#: Upper bound on an accepted request body (a diagnosis batch is a few
#: KiB of JSON; anything near this is abuse, not traffic).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Upper bound on the total bytes of one request's header block: real
#: requests carry a handful of short headers, so anything near this is
#: abuse -- without the cap a client could stream header lines at
#: network speed for the whole idle window.
MAX_HEAD_BYTES = 64 * 1024


class _BadRequest(Exception):
    """A request that cannot be served while keeping the connection's
    byte stream synchronised; carries the ready error response."""

    def __init__(self, status: int, payload: bytes) -> None:
        super().__init__(status)
        self.status = status
        self.payload = payload


class _Exchange:
    """One served request/response pair, ready to write and log."""

    __slots__ = ("status", "body", "keep_alive", "content_type",
                 "request_id", "method", "path", "duration_ms")

    def __init__(self, status: int, body: bytes, keep_alive: bool,
                 content_type: str = "application/json",
                 request_id: str = "", method: str = "-",
                 path: str = "-", duration_ms: float = 0.0) -> None:
        self.status = status
        self.body = body
        self.keep_alive = keep_alive
        self.content_type = content_type
        self.request_id = request_id
        self.method = method
        self.path = path
        self.duration_ms = duration_ms


class DiagnosisHTTPServer:
    """JSON-over-HTTP front for an :class:`AsyncDiagnosisService` (or
    anything exposing the same serving-front surface, e.g.
    :class:`~repro.runtime.cluster.ClusterService`).

    Pure stdlib (asyncio streams) with HTTP/1.1 persistent
    connections: requests are served back-to-back (pipelining
    included) on one connection until the client sends
    ``Connection: close``, the peer disconnects, or a parse error
    leaves the stream unsynchronised. Routes:

    * ``POST /v1/diagnose`` -- body is the codec request
      (``{"circuit": ..., "magnitudes_db": [[...], ...]}``); answers
      the codec response with one diagnosis per row.
    * ``POST /v1/diagnose-many`` -- a mixed-circuit burst
      (``{"requests": [...]}``); answers one diagnosis list per
      request (coalesced per circuit).
    * ``POST /v1/diagnose-posterior`` -- probabilistic tier: accepts
      the single-request *or* burst body shape and answers calibrated
      posterior fault probabilities plus an information-gain ranking
      of candidate measurement frequencies per row.
    * ``GET /v1/stats`` -- :meth:`ServiceStats.snapshot`.
    * ``GET /v1/metrics`` -- Prometheus text exposition 0.0.4 (see
      :mod:`repro.runtime.telemetry`).
    * ``GET /v1/circuits`` -- registered/benchmark/warmed names.
    * ``GET /v1/test-vector/<circuit>`` -- the measurement frequencies
      (warms the circuit when cold).
    * ``GET /v1/healthz`` -- liveness.

    Observability: every request gets (or propagates) an
    ``X-Request-Id`` -- echoed on the response and carried through
    :class:`~repro.runtime.cluster.HTTPReplica` hops -- and is traced
    as an ``http.request`` span. Sending ``X-Repro-Debug: trace``
    embeds the request's span tree in a JSON response under a
    ``"trace"`` key. Access logs go to the ``repro.access`` logger
    (one line per request; JSON lines with ``log_json=True``).
    """

    def __init__(self, service: AsyncDiagnosisService,
                 host: str = "127.0.0.1", port: int = 0,
                 idle_timeout: float = 60.0,
                 shutdown_grace: float = 5.0,
                 access_log: bool = True,
                 log_json: bool = False) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: Emit one ``repro.access`` log line per served request.
        self.access_log = access_log
        #: Structured JSON access-log lines instead of plain text.
        self.log_json = log_json
        self._access_logger = logging.getLogger("repro.access")
        #: Seconds a persistent connection may sit without making
        #: progress (no next request line, stalled headers, or a body
        #: upload with no bytes arriving) before the server reclaims
        #: it -- bounds parked handler tasks and open sockets. Body
        #: reads reset the clock per received chunk, so slow-but-live
        #: uploads survive. <= 0 disables.
        self.idle_timeout = idle_timeout
        #: Seconds aclose() waits for in-flight exchanges to finish
        #: writing their response before cancelling them.
        self.shutdown_grace = shutdown_grace
        self._server: Optional[asyncio.AbstractServer] = None
        self._closing = False
        # Keep-alive leaves one handler task parked per idle
        # connection; aclose() must reap them or they die noisily at
        # loop teardown. Tasks currently *serving* a request (routing,
        # not reading) are tracked separately so shutdown can drain
        # them instead of dropping a client mid-response.
        self._connections: Set["asyncio.Task[None]"] = set()
        self._serving: Set["asyncio.Task[None]"] = set()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) -- useful with ``port=0``."""
        if self._server is None:
            raise ServiceError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> "DiagnosisHTTPServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        self._closing = True           # served exchanges stop looping
        if self._server is not None:
            self._server.close()       # stop accepting new connections
        # Reap persistent connections BEFORE wait_closed(): on Python
        # >= 3.12.1 Server.wait_closed() waits for every connection
        # handler, so a client idling on a keep-alive connection would
        # deadlock shutdown until its idle timeout (or forever).
        # Connections parked between requests are cancelled outright;
        # exchanges being served get shutdown_grace to finish writing
        # their response first.
        for task in list(self._connections):
            if task not in self._serving:
                task.cancel()
        remaining = set(self._connections)
        if remaining:
            _, pending = await asyncio.wait(
                remaining, timeout=self.shutdown_grace)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        await self.service.aclose()

    # ------------------------------------------------------------------
    async def _timed(self, awaitable):
        """Await under the idle/stall timeout (disabled when <= 0)."""
        if self.idle_timeout > 0:
            return await asyncio.wait_for(awaitable,
                                          timeout=self.idle_timeout)
        return await awaitable

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if self._closing:
            # Accepted in the shutdown window before aclose()'s task
            # snapshot could see us: bail out instead of parking (on
            # >= 3.12.1 wait_closed() would wait for this handler).
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
            return
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                exchange = await self._respond(reader)
                if exchange is None:        # clean EOF between requests
                    break
                # The write rides inside the _serving window too (set
                # in _respond before routing): shutdown must not
                # cancel an exchange mid-response-body.
                if task is not None:
                    self._serving.add(task)
                try:
                    status = exchange.status
                    reason = _HTTP_REASONS.get(status, "Unknown")
                    connection = "keep-alive" if exchange.keep_alive \
                        else "close"
                    request_id_line = (
                        f"X-Request-Id: {exchange.request_id}\r\n"
                        if exchange.request_id else "")
                    head = (f"HTTP/1.1 {status} {reason}\r\n"
                            f"Content-Type: {exchange.content_type}\r\n"
                            f"Content-Length: {len(exchange.body)}\r\n"
                            f"{request_id_line}"
                            f"Connection: {connection}\r\n\r\n"
                            ).encode("latin1")
                    writer.write(head + exchange.body)
                    try:
                        await self._timed(writer.drain())
                    except asyncio.TimeoutError:
                        # Client is not reading its response: reclaim
                        # the connection instead of parking forever.
                        return
                finally:
                    if task is not None:
                        self._serving.discard(task)
                if self.access_log:
                    self._log_access(exchange)
                if not exchange.keep_alive or self._closing:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown while this connection idled between
            # keep-alive requests: drop it quietly. Returning (instead
            # of re-raising) lets the task finish cleanly, so nothing
            # is logged at event-loop teardown.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _respond(self, reader: asyncio.StreamReader
                       ) -> Optional[_Exchange]:
        """One request -> a ready-to-write :class:`_Exchange`.

        ``None`` means the client closed cleanly before sending another
        request, or idled/stalled past ``idle_timeout``: the request
        line + headers run under one timeout, and the body read times
        out per chunk (progress resets the clock, so slow-but-live
        uploads survive while a half-sent request cannot park the
        handler forever). Any error that leaves the byte stream
        unsynchronised (bad request line, bad/oversized length) forces
        a close: the unread remainder cannot be framed as a next
        request.
        """
        try:
            head = await self._timed(self._read_head(reader))
        except asyncio.TimeoutError:
            return None         # idle or stalled connection: reclaim
        except _BadRequest as exc:
            return _Exchange(exc.status, exc.payload, False)
        except ValueError:
            # StreamReader raises ValueError past its line limit
            # (oversized request line or header).
            return _Exchange(400, codec.encode_error(
                "request line/header too long"), False)
        if head is None:
            return None
        method, path, length, keep_alive, headers = head
        try:
            body = await self._read_body(reader, length)
        except asyncio.TimeoutError:
            return None         # body upload stalled: reclaim
        # Adopt the client's X-Request-Id (or mint one): it rides the
        # task context from here, so spans, access logs and outbound
        # HTTPReplica hops all carry the same id.
        request_id = telemetry.ensure_request_id(
            headers.get("x-request-id"))
        want_trace = "trace" in headers.get("x-repro-debug", "").lower()
        started = time.perf_counter()
        task = asyncio.current_task()
        if task is not None:
            self._serving.add(task)
        content_type = "application/json"
        try:
            with telemetry.TRACER.span("http.request", method=method,
                                       path=path) as span:
                try:
                    routed = await self._route(method, path, body)
                    if len(routed) == 3:
                        status, payload, content_type = routed
                    else:
                        status, payload = routed
                except ServiceOverloadedError as exc:
                    status, payload = 503, codec.encode_error(
                        str(exc), kind=type(exc).__name__)
                except ClusterError as exc:
                    # A routing failure (every owning replica down) is
                    # an outage, not a bad request: retryable 503,
                    # never 404.
                    status, payload = 503, codec.encode_error(
                        str(exc), kind=type(exc).__name__)
                except CodecError as exc:
                    status, payload = 400, codec.encode_error(
                        str(exc), kind=type(exc).__name__)
                except ServiceError as exc:
                    status, payload = 404, codec.encode_error(
                        str(exc), kind=type(exc).__name__)
                except Exception as exc:  # noqa: BLE001 -- server boundary
                    status, payload = 500, codec.encode_error(
                        str(exc), kind=type(exc).__name__)
                span.attrs["status"] = status
        finally:
            if task is not None:
                self._serving.discard(task)
        if want_trace and content_type == "application/json":
            payload = self._embed_trace(payload, span)
        return _Exchange(status, payload, keep_alive, content_type,
                         request_id, method, path,
                         (time.perf_counter() - started) * 1e3)

    @staticmethod
    def _embed_trace(payload: bytes, span: telemetry.Span) -> bytes:
        """Add the finished request span tree to a JSON object body."""
        try:
            data = json.loads(payload.decode("utf-8"))
        except ValueError:
            return payload
        if not isinstance(data, dict):
            return payload
        data["trace"] = span.to_dict()
        return json.dumps(data).encode("utf-8")

    def _log_access(self, exchange: _Exchange) -> None:
        if self.log_json:
            self._access_logger.info(json.dumps({
                "method": exchange.method,
                "path": exchange.path,
                "status": exchange.status,
                "duration_ms": round(exchange.duration_ms, 3),
                "bytes": len(exchange.body),
                "request_id": exchange.request_id,
            }, sort_keys=True))
        else:
            self._access_logger.info(
                "%s %s %d %dB %.2fms %s", exchange.method,
                exchange.path, exchange.status, len(exchange.body),
                exchange.duration_ms, exchange.request_id or "-")

    @staticmethod
    async def _read_head(reader: asyncio.StreamReader
                         ) -> Optional[Tuple[str, str, int, bool,
                                             Dict[str, str]]]:
        """Read and frame one request head: (method, path, body
        length, keep, headers).

        ``None`` on clean EOF; :class:`_BadRequest` for anything that
        cannot be answered while keeping the stream synchronised.
        """
        request_line = await reader.readline()
        if request_line == b"":
            return None
        parts = request_line.decode("latin1").split()
        if len(parts) < 2:
            raise _BadRequest(
                400, codec.encode_error("malformed request line"))
        method, path = parts[0].upper(), parts[1]
        version = parts[2].upper() if len(parts) >= 3 else "HTTP/1.0"
        headers: Dict[str, str] = {}
        head_bytes = len(request_line)
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            head_bytes += len(line)
            if head_bytes > MAX_HEAD_BYTES:
                raise _BadRequest(431, codec.encode_error(
                    f"request head exceeds {MAX_HEAD_BYTES} bytes"))
            name, _, value = line.decode("latin1").partition(":")
            name, value = name.strip().lower(), value.strip()
            if name == "content-length" and \
                    headers.get(name, value) != value:
                # Conflicting lengths are request-smuggling shaped: an
                # intermediary framing on the other copy would
                # desynchronise the stream, so refuse and close.
                raise _BadRequest(400, codec.encode_error(
                    "conflicting Content-Length headers"))
            headers[name] = value
        # HTTP/1.1 persists by default; 1.0 only on explicit opt-in.
        # A "close" token always wins.
        connection = headers.get("connection", "").lower()
        keep_alive = connection != "close" if version == "HTTP/1.1" \
            else connection == "keep-alive"
        if "transfer-encoding" in headers:
            # Bodies are framed by Content-Length only; chunked
            # framing we did not read would desynchronise the
            # persistent stream (request-smuggling shaped), so refuse
            # and close.
            raise _BadRequest(400, codec.encode_error(
                "Transfer-Encoding is not supported; frame the body "
                "with Content-Length"))
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _BadRequest(
                400, codec.encode_error("bad Content-Length")) from None
        if length < 0:
            raise _BadRequest(
                400, codec.encode_error("bad Content-Length"))
        if length > MAX_BODY_BYTES:
            raise _BadRequest(413, codec.encode_error(
                f"body exceeds {MAX_BODY_BYTES} bytes"))
        return method, path, length, keep_alive, headers

    async def _read_body(self, reader: asyncio.StreamReader,
                         length: int) -> bytes:
        """Read a Content-Length body, timing out per chunk.

        Each received chunk resets the idle clock, so a slow-but-live
        upload completes while a stalled one raises
        :class:`asyncio.TimeoutError`.
        """
        if length <= 0:
            return b""
        chunks = []
        remaining = length
        while remaining:
            chunk = await self._timed(reader.read(min(65536,
                                                      remaining)))
            if chunk == b"":
                raise asyncio.IncompleteReadError(b"".join(chunks),
                                                  length)
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    async def _route(self, method: str, path: str, body: bytes):
        """One routed request -> ``(status, payload)`` or
        ``(status, payload, content_type)`` (JSON by default)."""
        if path == "/v1/diagnose":
            if method != "POST":
                return 405, codec.encode_error("use POST")
            request = codec.decode_request(body)
            diagnoses = await self.service.submit(request.circuit,
                                                  request.magnitudes_db)
            return 200, codec.encode_response(diagnoses)
        if path == "/v1/diagnose-many":
            if method != "POST":
                return 405, codec.encode_error("use POST")
            requests = codec.decode_request_many(body)
            batches = await self.service.submit_many(
                [(request.circuit, request.magnitudes_db)
                 for request in requests])
            return 200, codec.encode_response_many(batches)
        if path == "/v1/diagnose-posterior":
            if method != "POST":
                return 405, codec.encode_error("use POST")
            requests, is_burst = codec.decode_posterior_request(body)
            batches = await self.service.submit_posterior_many(
                [(request.circuit, request.magnitudes_db)
                 for request in requests])
            if is_burst:
                return 200, codec.encode_posterior_response_many(batches)
            return 200, codec.encode_posterior_response(batches[0])
        if path == "/v1/stats" and method == "GET":
            return 200, codec.encode_stats(
                await self.service.stats_snapshot())
        if path == "/v1/metrics" and method == "GET":
            text = await self.service.metrics_text()
            return 200, text.encode("utf-8"), telemetry.CONTENT_TYPE
        if path == "/v1/circuits" and method == "GET":
            known = self.service.known_circuits()
            return 200, codec.encode_stats(
                {origin: list(names) for origin, names in known.items()})
        if path.startswith("/v1/test-vector/") and method == "GET":
            circuit = path[len("/v1/test-vector/"):]
            freqs = await self.service.test_vector_hz(circuit)
            return 200, codec.encode_stats(
                {"circuit": circuit,
                 "test_vector_hz": sorted(freqs)})
        if path == "/v1/healthz" and method == "GET":
            # warmed/registered ride along so cluster health probes
            # can feed their sync introspection caches in one request.
            known = self.service.known_circuits()
            return 200, codec.encode_stats(
                {"status": "ok",
                 "queue_depth": self.service.queue_depth,
                 "warmed": list(self.service.warmed_circuits()),
                 "registered": list(known["registered"])})
        return 404, codec.encode_error(f"no route for {method} {path}")


async def serve(service: Optional[AsyncDiagnosisService] = None,
                host: str = "127.0.0.1", port: int = 8080,
                **async_kwargs) -> DiagnosisHTTPServer:
    """Start an HTTP diagnosis server; returns it already listening.

    ``async_kwargs`` are forwarded to :class:`AsyncDiagnosisService`
    when no prebuilt service is given.
    """
    if service is None:
        service = AsyncDiagnosisService(**async_kwargs)
    server = DiagnosisHTTPServer(service, host=host, port=port)
    await server.start()
    return server
