"""The end-to-end fault-trajectory ATPG pipeline.

Chains every stage of the paper's method:

1. fault universe (parametric grid on the faultable components);
2. fault simulation -> fault dictionary on a dense AC grid;
3. response surface (fast signature interpolation);
4. GA search for the optimal test vector (fitness per configuration);
5. final trajectory set + perpendicular classifier + ambiguity report.

``FaultTrajectoryATPG(info).run(seed=...)`` returns an
:class:`ATPGResult` that can diagnose unknown responses/points and
evaluate itself on held-out faults.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.library import CircuitInfo
from ..diagnosis.classifier import Diagnosis, TrajectoryClassifier
from ..diagnosis.evaluate import (
    EvaluationResult,
    HELD_OUT_DEVIATIONS,
    ambiguity_groups,
    evaluate_classifier,
    make_test_cases,
)
from ..errors import ReproError
from ..faults.dictionary import FaultDictionary
from ..faults.surface import ResponseSurface
from ..faults.universe import FaultUniverse, parametric_universe
from ..ga.encoding import FrequencySpace
from ..ga.engine import GAResult, GeneticAlgorithm
from ..ga.fitness import (
    CombinedFitness,
    MarginFitness,
    PaperFitness,
    TrajectoryFitness,
)
from ..sim.ac import FrequencyResponse
from ..trajectory.mapping import SignatureMapper
from ..trajectory.metrics import TrajectoryMetrics, evaluate_metrics
from ..trajectory.trajectory import TrajectorySet
from ..units import log_frequency_grid
from .config import PipelineConfig

__all__ = ["FaultTrajectoryATPG", "ATPGResult"]


@dataclass
class ATPGResult:
    """Everything the pipeline produced, ready for diagnosis."""

    info: CircuitInfo
    config: PipelineConfig
    universe: FaultUniverse
    dictionary: FaultDictionary
    surface: ResponseSurface
    ga_result: GAResult
    test_vector_hz: Tuple[float, ...]
    mapper: SignatureMapper
    trajectories: TrajectorySet
    classifier: TrajectoryClassifier
    metrics: TrajectoryMetrics
    groups: Tuple[FrozenSet[str], ...]
    elapsed_seconds: float

    # ------------------------------------------------------------------
    def diagnose_point(self, point: np.ndarray) -> Diagnosis:
        """Diagnose a signature-space point."""
        return self.classifier.classify_point(point)

    def diagnose_response(self, response: FrequencyResponse) -> Diagnosis:
        """Diagnose a measured magnitude response."""
        return self.classifier.classify_response(response)

    def evaluate(self, deviations: Sequence[float] = HELD_OUT_DEVIATIONS,
                 noise_db: float = 0.0, tolerance: float = 0.0,
                 repeats: int = 1,
                 seed: Optional[int] = None) -> EvaluationResult:
        """Score the pipeline on held-out deviations (see evaluate.py)."""
        cases = make_test_cases(
            self.info, self.mapper,
            components=self.universe.components,
            deviations=deviations, noise_db=noise_db,
            tolerance=tolerance, repeats=repeats, seed=seed)
        return evaluate_classifier(self.classifier, cases,
                                   groups=self.groups)

    def report(self) -> str:
        """Human-readable run summary."""
        freqs = ", ".join(f"{f:,.4g} Hz" for f in self.test_vector_hz)
        groups = ", ".join("{" + ",".join(sorted(g)) + "}"
                           for g in self.groups if len(g) > 1)
        lines = [
            f"circuit: {self.info.circuit.name} "
            f"({len(self.universe.components)} fault targets, "
            f"{len(self.universe)} dictionary faults)",
            f"test vector: [{freqs}]",
            f"GA fitness: {self.ga_result.best_fitness:.4f} "
            f"({self.ga_result.generations_run} generations, "
            f"{self.ga_result.evaluations} evaluations)",
            f"trajectory conflicts: {self.metrics.intersections} "
            f"crossings, {self.metrics.common_pathways} overlaps",
            f"min separation: {self.metrics.min_separation:.4g}",
            f"ambiguity groups (<= {self.config.ambiguity_threshold}): "
            f"{groups or 'none'}",
            f"pipeline time: {self.elapsed_seconds:.2f}s",
        ]
        return "\n".join(lines)


class FaultTrajectoryATPG:
    """Orchestrates the full paper flow for one circuit."""

    def __init__(self, info: CircuitInfo,
                 config: Optional[PipelineConfig] = None,
                 components: Optional[Sequence[str]] = None) -> None:
        self.info = info
        self.config = config or PipelineConfig.paper()
        self.components = tuple(components) if components \
            else tuple(info.faultable)
        if not self.components:
            raise ReproError(
                f"{info.circuit.name}: no faultable components")

    # ------------------------------------------------------------------
    def build_dictionary(self) -> Tuple[FaultUniverse, FaultDictionary]:
        """Stages 1-2: fault universe + fault simulation."""
        universe = parametric_universe(
            self.info.circuit, components=self.components,
            deviations=self.config.deviations)
        grid = log_frequency_grid(self.info.f_min_hz, self.info.f_max_hz,
                                  self.config.dictionary_points)
        dictionary = FaultDictionary.build(
            universe, self.info.output_node, grid,
            input_source=self.info.input_source)
        return universe, dictionary

    def make_fitness(self, surface: ResponseSurface) -> TrajectoryFitness:
        """Stage 4a: the configured fitness function."""
        # The template's frequencies are placeholders: the fitness swaps
        # in each candidate test vector via mapper.with_freqs().
        placeholder = tuple(float(i + 1)
                            for i in range(self.config.num_frequencies))
        mapper_template = SignatureMapper(
            placeholder, scale=self.config.signature_scale,
            relative_to_golden=self.config.relative_to_golden)
        kind = self.config.fitness
        if kind == "paper":
            return PaperFitness(surface, mapper_template,
                                overlap_weight=self.config.overlap_weight)
        if kind == "margin":
            return MarginFitness(surface, mapper_template,
                                 margin_scale=self.config.margin_scale)
        return CombinedFitness(
            surface, mapper_template,
            overlap_weight=self.config.overlap_weight,
            margin_weight=self.config.margin_weight,
            margin_scale=self.config.margin_scale)

    def run(self, seed: Optional[int] = None) -> ATPGResult:
        """Execute the full pipeline."""
        started = time.perf_counter()
        universe, dictionary = self.build_dictionary()
        surface = ResponseSurface(dictionary)

        space = FrequencySpace(self.info.f_min_hz, self.info.f_max_hz,
                               self.config.num_frequencies)
        fitness = self.make_fitness(surface)
        ga = GeneticAlgorithm(space, fitness, self.config.ga)
        ga_result = ga.run(seed=seed)
        test_vector = ga_result.best_freqs_hz

        mapper = SignatureMapper(
            test_vector, scale=self.config.signature_scale,
            relative_to_golden=self.config.relative_to_golden)
        # Final artefacts are re-simulated *exactly at the test vector*:
        # a mini-dictionary whose grid is the test frequencies themselves.
        # Interpolating the dense-grid dictionary instead would inject a
        # few-mdB error -- larger than the separation of near-degenerate
        # trajectory pairs (R3/R5, R4/C2 on the biquad CUT).
        exact = FaultDictionary.build(
            universe, self.info.output_node,
            np.array(sorted(test_vector), dtype=float),
            input_source=self.info.input_source)
        trajectories = TrajectorySet.from_source(exact, mapper)
        metrics = evaluate_metrics(trajectories)
        groups = ambiguity_groups(trajectories,
                                  self.config.ambiguity_threshold)
        classifier = TrajectoryClassifier(trajectories,
                                          golden=exact.golden)
        elapsed = time.perf_counter() - started
        return ATPGResult(
            info=self.info,
            config=self.config,
            universe=universe,
            dictionary=dictionary,
            surface=surface,
            ga_result=ga_result,
            test_vector_hz=test_vector,
            mapper=mapper,
            trajectories=trajectories,
            classifier=classifier,
            metrics=metrics,
            groups=groups,
            elapsed_seconds=elapsed,
        )
