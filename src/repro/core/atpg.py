"""The end-to-end fault-trajectory ATPG pipeline.

Chains every stage of the paper's method:

1. fault universe (parametric grid on the faultable components);
2. fault simulation -> fault dictionary on a dense AC grid;
3. response surface (fast signature interpolation);
4. GA search for the optimal test vector (fitness per configuration);
5. final trajectory set + perpendicular classifier + ambiguity report.

``FaultTrajectoryATPG(info).run(seed=...)`` returns an
:class:`ATPGResult` that can diagnose unknown responses/points and
evaluate itself on held-out faults.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (TYPE_CHECKING, FrozenSet, List, Optional, Sequence,
                    Tuple)

import numpy as np

if TYPE_CHECKING:  # avoid a core <-> runtime import cycle
    from ..runtime.batch import BatchDiagnoser
    from ..runtime.store import ArtifactStore

from .. import profiling
from ..circuits.library import CircuitInfo
from ..diagnosis.classifier import Diagnosis, TrajectoryClassifier
from ..diagnosis.evaluate import (
    EvaluationResult,
    HELD_OUT_DEVIATIONS,
    ambiguity_groups,
    evaluate_classifier,
    make_test_cases,
)
from ..errors import ReproError
from ..faults.dictionary import FaultDictionary
from ..faults.surface import ResponseSurface
from ..faults.universe import FaultUniverse, parametric_universe
from ..ga.encoding import FrequencySpace
from ..ga.engine import GAResult, GeneticAlgorithm
from ..ga.fitness import (
    CombinedFitness,
    MarginFitness,
    PaperFitness,
    TrajectoryFitness,
)
from ..sim.ac import FrequencyResponse
from ..sim.engine import SimulationEngine, make_engine
from ..trajectory.mapping import SignatureMapper
from ..trajectory.metrics import TrajectoryMetrics, evaluate_metrics
from ..trajectory.trajectory import TrajectorySet
from ..units import log_frequency_grid
from .config import PipelineConfig

__all__ = ["FaultTrajectoryATPG", "ATPGResult"]


@dataclass
class ATPGResult:
    """Everything the pipeline produced, ready for diagnosis."""

    info: CircuitInfo
    config: PipelineConfig
    universe: FaultUniverse
    dictionary: FaultDictionary
    ga_result: GAResult
    test_vector_hz: Tuple[float, ...]
    mapper: SignatureMapper
    trajectories: TrajectorySet
    classifier: TrajectoryClassifier
    metrics: TrajectoryMetrics
    groups: Tuple[FrozenSet[str], ...]
    elapsed_seconds: float
    #: Which artifacts a ``store=`` run loaded instead of recomputing
    #: (subset of {"dictionary", "ga", "exact", "trajectories"}).
    cache_hits: Tuple[str, ...] = ()
    #: The simulation engine the pipeline ran on (already stamped for
    #: this circuit); :meth:`evaluate` reuses it for case generation.
    engine: Optional[SimulationEngine] = None

    # ------------------------------------------------------------------
    @property
    def surface(self) -> ResponseSurface:
        """Response surface over the dense dictionary, built lazily.

        A store-warmed run never evaluates fitness, so the surface's
        magnitude matrix is only materialised when actually queried.
        """
        cached = getattr(self, "_surface_cache", None)
        if cached is None:
            cached = ResponseSurface(self.dictionary)
            self._surface_cache = cached
        return cached

    def diagnose_point(self, point: np.ndarray) -> Diagnosis:
        """Diagnose a signature-space point."""
        return self.classifier.classify_point(point)

    def diagnose_response(self, response: FrequencyResponse) -> Diagnosis:
        """Diagnose a measured magnitude response."""
        return self.classifier.classify_response(response)

    def batch_diagnoser(self) -> "BatchDiagnoser":
        """Vectorised batch classifier over this result's trajectories.

        Built lazily and memoised: the precomputed segment tensors are
        shared by every subsequent :meth:`diagnose_many` call.
        """
        cached = getattr(self, "_batch_diagnoser", None)
        if cached is None:
            from ..runtime.batch import BatchDiagnoser
            cached = BatchDiagnoser(self.trajectories,
                                    golden=self.classifier.golden)
            self._batch_diagnoser = cached
        return cached

    def diagnose_many(self, responses) -> List[Diagnosis]:
        """Diagnose a batch of measured responses at once.

        Accepts a sequence of :class:`FrequencyResponse` objects or an
        (N, F) matrix of dB magnitudes sampled at the test vector (in
        ascending-frequency order). Labels are bitwise-identical to
        calling :meth:`diagnose_response` per response, but the
        projection runs as one vectorised NumPy operation.
        """
        return self.batch_diagnoser().classify_responses(responses)

    def diagnose_points(self, points: np.ndarray) -> List[Diagnosis]:
        """Batch version of :meth:`diagnose_point` ((N, D) array)."""
        return self.batch_diagnoser().classify_points(points)

    def evaluate(self, deviations: Sequence[float] = HELD_OUT_DEVIATIONS,
                 noise_db: float = 0.0, tolerance: float = 0.0,
                 repeats: int = 1,
                 seed: Optional[int] = None) -> EvaluationResult:
        """Score the pipeline on held-out deviations (see evaluate.py)."""
        cases = make_test_cases(
            self.info, self.mapper,
            components=self.universe.components,
            deviations=deviations, noise_db=noise_db,
            tolerance=tolerance, repeats=repeats, seed=seed,
            engine=self.engine)
        return evaluate_classifier(self.classifier, cases,
                                   groups=self.groups,
                                   diagnoser=self.batch_diagnoser())

    def report(self) -> str:
        """Human-readable run summary."""
        freqs = ", ".join(f"{f:,.4g} Hz" for f in self.test_vector_hz)
        groups = ", ".join("{" + ",".join(sorted(g)) + "}"
                           for g in self.groups if len(g) > 1)
        lines = [
            f"circuit: {self.info.circuit.name} "
            f"({len(self.universe.components)} fault targets, "
            f"{len(self.universe)} dictionary faults)",
            f"test vector: [{freqs}]",
            f"GA fitness: {self.ga_result.best_fitness:.4f} "
            f"({self.ga_result.generations_run} generations, "
            f"{self.ga_result.evaluations} evaluations)",
            f"trajectory conflicts: {self.metrics.intersections} "
            f"crossings, {self.metrics.common_pathways} overlaps",
            f"min separation: {self.metrics.min_separation:.4g}",
            f"ambiguity groups (<= {self.config.ambiguity_threshold}): "
            f"{groups or 'none'}",
            f"pipeline time: {self.elapsed_seconds:.2f}s",
        ]
        return "\n".join(lines)


class FaultTrajectoryATPG:
    """Orchestrates the full paper flow for one circuit."""

    def __init__(self, info: CircuitInfo,
                 config: Optional[PipelineConfig] = None,
                 components: Optional[Sequence[str]] = None) -> None:
        self.info = info
        self.config = config or PipelineConfig.paper()
        self.components = tuple(components) if components \
            else tuple(info.faultable)
        if not self.components:
            raise ReproError(
                f"{info.circuit.name}: no faultable components")
        # One engine for the whole pipeline: the nominal circuit is
        # stamped once here and reused by the dense dictionary, the
        # exact test-vector dictionary and held-out case generation.
        self.engine = make_engine(info.circuit, self.config.engine)

    # ------------------------------------------------------------------
    def _simulate_dictionary(self, universe: FaultUniverse,
                             freqs_hz: np.ndarray) -> FaultDictionary:
        """Fault-simulate ``universe``, honouring the worker config."""
        if self.config.n_workers > 1:
            from ..runtime.parallel import build_dictionary_parallel
            return build_dictionary_parallel(
                universe, self.info.output_node, freqs_hz,
                input_source=self.info.input_source,
                n_workers=self.config.n_workers,
                executor=self.config.executor,
                engine_kind=self.config.engine)
        return FaultDictionary.build(
            universe, self.info.output_node, freqs_hz,
            input_source=self.info.input_source,
            engine=self.engine)

    def _stage_inputs(self) -> Tuple[FaultUniverse, np.ndarray]:
        """Stage 1: the fault universe and the dense dictionary grid."""
        universe = parametric_universe(
            self.info.circuit, components=self.components,
            deviations=self.config.deviations)
        grid = log_frequency_grid(self.info.f_min_hz, self.info.f_max_hz,
                                  self.config.dictionary_points)
        return universe, grid

    def build_dictionary(self) -> Tuple[FaultUniverse, FaultDictionary]:
        """Stages 1-2: fault universe + fault simulation."""
        universe, grid = self._stage_inputs()
        dictionary = self._simulate_dictionary(universe, grid)
        return universe, dictionary

    def make_fitness(self, surface: ResponseSurface) -> TrajectoryFitness:
        """Stage 4a: the configured fitness function."""
        # The template's frequencies are placeholders: the fitness swaps
        # in each candidate test vector via mapper.with_freqs().
        placeholder = tuple(float(i + 1)
                            for i in range(self.config.num_frequencies))
        mapper_template = SignatureMapper(
            placeholder, scale=self.config.signature_scale,
            relative_to_golden=self.config.relative_to_golden)
        kind = self.config.fitness
        if kind == "paper":
            return PaperFitness(surface, mapper_template,
                                overlap_weight=self.config.overlap_weight)
        if kind == "margin":
            return MarginFitness(surface, mapper_template,
                                 margin_scale=self.config.margin_scale)
        return CombinedFitness(
            surface, mapper_template,
            overlap_weight=self.config.overlap_weight,
            margin_weight=self.config.margin_weight,
            margin_scale=self.config.margin_scale)

    def run(self, seed: Optional[int] = None,
            store: Optional["ArtifactStore"] = None) -> ATPGResult:
        """Execute the full pipeline.

        With ``store=`` (an :class:`repro.runtime.store.ArtifactStore`,
        a bare :class:`repro.runtime.backends.StorageBackend` or a
        local store-root path) every expensive artifact -- the dense
        dictionary, the per-seed GA result and the exact test-vector
        dictionary -- is looked up by content key first and persisted
        after computation, so a repeat run of the same problem skips
        fault simulation and the GA search entirely.
        """
        if store is not None:
            from ..runtime.store import as_store
            store = as_store(store)
        started = time.perf_counter()
        universe, grid = self._stage_inputs()
        cache_hits: List[str] = []
        # Each artifact is keyed on only the inputs it depends on (see
        # repro.runtime.store): sweeping a GA knob reuses the cached
        # dictionary, and any config landing on the same test vector
        # shares the exact dictionary.
        base_key = store.problem_key(self.info, universe) if store \
            else None
        dict_key = store.derive_key(
            base_key, "dense", [float(f) for f in grid]) if store else None

        dictionary = store.load_dictionary("dictionary", dict_key) \
            if store else None
        if dictionary is not None:
            cache_hits.append("dictionary")
        else:
            with profiling.profiled("pipeline.dictionary",
                                    circuit=self.info.circuit.name,
                                    faults=len(universe),
                                    points=int(grid.size)):
                dictionary = self._simulate_dictionary(universe, grid)
            if store:
                store.save_dictionary("dictionary", dict_key, dictionary)

        # An unseeded GA run is an independent random search by
        # contract, so it must never be served from (or poison) the
        # cache -- only seeded searches are memoisable.
        ga_key = store.ga_search_key(dict_key, self.info, self.config,
                                     seed) if store and seed is not None \
            else None
        ga_result = store.load_ga_result(ga_key) if ga_key else None
        surface: Optional[ResponseSurface] = None
        if ga_result is not None:
            cache_hits.append("ga")
        else:
            space = FrequencySpace(self.info.f_min_hz, self.info.f_max_hz,
                                   self.config.num_frequencies)
            surface = ResponseSurface(dictionary)
            fitness = self.make_fitness(surface)
            ga = GeneticAlgorithm(
                space, fitness, self.config.ga,
                n_workers=self.config.effective_ga_workers,
                executor=self.config.ga_executor)
            with profiling.profiled("pipeline.ga_search",
                                    circuit=self.info.circuit.name):
                ga_result = ga.run(seed=seed)
            if ga_key:
                store.save_ga_result(ga_key, ga_result)
        test_vector = ga_result.best_freqs_hz

        mapper = SignatureMapper(
            test_vector, scale=self.config.signature_scale,
            relative_to_golden=self.config.relative_to_golden)
        # Final artefacts are re-simulated *exactly at the test vector*:
        # a mini-dictionary whose grid is the test frequencies themselves.
        # Interpolating the dense-grid dictionary instead would inject a
        # few-mdB error -- larger than the separation of near-degenerate
        # trajectory pairs (R3/R5, R4/C2 on the biquad CUT).
        exact_key = store.derive_key(
            base_key, "exact", sorted(float(f) for f in test_vector)) \
            if store else None
        exact = store.load_dictionary("exact", exact_key) if store else None
        if exact is not None:
            cache_hits.append("exact")
        else:
            with profiling.profiled("pipeline.exact",
                                    circuit=self.info.circuit.name):
                exact = self._simulate_dictionary(
                    universe, np.array(sorted(test_vector), dtype=float))
            if store:
                store.save_dictionary("exact", exact_key, exact)
        traj_key = store.trajectory_key(exact_key, self.config) \
            if store else None
        trajectories = store.load_trajectories(traj_key) if store else None
        if trajectories is not None:
            cache_hits.append("trajectories")
        else:
            with profiling.profiled("pipeline.trajectories",
                                    circuit=self.info.circuit.name):
                trajectories = TrajectorySet.from_source(exact, mapper)
            if store:
                store.save_trajectories(traj_key, trajectories)
        metrics = evaluate_metrics(trajectories)
        groups = ambiguity_groups(trajectories,
                                  self.config.ambiguity_threshold)
        classifier = TrajectoryClassifier(trajectories,
                                          golden=exact.golden)
        elapsed = time.perf_counter() - started
        result = ATPGResult(
            info=self.info,
            config=self.config,
            universe=universe,
            dictionary=dictionary,
            ga_result=ga_result,
            test_vector_hz=test_vector,
            mapper=mapper,
            trajectories=trajectories,
            classifier=classifier,
            metrics=metrics,
            groups=groups,
            elapsed_seconds=elapsed,
            cache_hits=tuple(cache_hits),
            engine=self.engine,
        )
        if surface is not None:     # reuse the fitness's surface
            result._surface_cache = surface
        return result
