"""End-to-end fault-trajectory ATPG pipeline."""

from .atpg import ATPGResult, FaultTrajectoryATPG
from .config import PipelineConfig

__all__ = ["FaultTrajectoryATPG", "ATPGResult", "PipelineConfig"]
