"""End-to-end pipeline configuration."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import ReproError
from ..faults.models import paper_deviation_grid
from ..ga.config import GAConfig
from ..sim.engine import ENGINE_KINDS

__all__ = ["PipelineConfig"]

_FITNESS_KINDS = ("paper", "margin", "combined")
_EXECUTOR_KINDS = ("process", "thread")


@dataclass(frozen=True)
class PipelineConfig:
    """Everything the ATPG pipeline needs beyond the circuit itself.

    Defaults follow the paper: the +/-40 % / 10 %-step fault grid, a
    two-frequency test vector, dB signatures with the golden point at the
    origin, the 1/(1+I) fitness and the 128x15 roulette GA.

    Attributes
    ----------
    deviations:
        Dictionary fault grid (relative deviations, 0 excluded).
    dictionary_points:
        Dense AC grid size used for the dictionary / response surface.
    num_frequencies:
        Test-vector length (the paper uses 2).
    signature_scale / relative_to_golden:
        Signature mapping options (see SignatureMapper).
    fitness:
        ``"paper"`` = 1/(1+I); ``"margin"`` = separation margin;
        ``"combined"`` = paper + bounded margin tie-break.
    overlap_weight / margin_weight / margin_scale:
        Fitness shape parameters (see repro.ga.fitness).
    ga:
        The GA hyper-parameters (defaults to the paper's).
    ambiguity_threshold:
        Trajectory separation (signature units) below which two
        components are reported as one ambiguity group.
    n_workers:
        Worker count for parallel fault-dictionary builds and for
        population-level GA evaluation. 0 or 1 keep the serial paths;
        >= 2 fans dictionary variant blocks out over a
        ``concurrent.futures`` pool (see ``repro.runtime.parallel``)
        and uncached GA individuals over the GA pool.
    executor:
        Pool kind for parallel dictionary builds: ``"process"`` or
        ``"thread"``.
    ga_workers / ga_executor:
        GA population-scoring pool. ``ga_workers`` of None inherits
        ``n_workers``; ``ga_executor`` picks ``"thread"`` (shared memo
        cache, wins only where BLAS drops the GIL) or ``"process"``
        (response surface published zero-copy into shared memory,
        shards scored across real cores -- bitwise-identical results
        either way; see ``repro.runtime.shm``).
    engine:
        Simulation engine for every fault-simulation stage:
        ``"batched"`` (default; stamp-once/solve-many
        :class:`~repro.sim.engine.BatchedMnaEngine`), ``"scalar"``
        (one circuit assembly per variant -- the reference path, kept
        for conservative deployments and equivalence testing) or
        ``"factored"`` (:class:`~repro.sim.engine.FactoredMnaEngine`:
        nominal system factored once per frequency, fault variants
        solved via Sherman-Morrison-Woodbury low-rank updates with a
        per-variant dense fallback). Batched and scalar produce
        bitwise-identical responses; factored matches them within
        tight tolerance (~1e-12 relative on the benchmark circuits).
    """

    deviations: Tuple[float, ...] = field(
        default_factory=paper_deviation_grid)
    dictionary_points: int = 401
    num_frequencies: int = 2
    signature_scale: str = "db"
    relative_to_golden: bool = True
    fitness: str = "paper"
    overlap_weight: float = 1.0
    margin_weight: float = 0.45
    margin_scale: float = 1.0
    ga: GAConfig = field(default_factory=GAConfig.paper)
    ambiguity_threshold: float = 0.01
    n_workers: int = 0
    executor: str = "process"
    ga_workers: Optional[int] = None
    ga_executor: str = "thread"
    engine: str = "batched"

    def __post_init__(self) -> None:
        if self.fitness not in _FITNESS_KINDS:
            raise ReproError(
                f"fitness must be one of {_FITNESS_KINDS}, "
                f"got {self.fitness!r}")
        if self.dictionary_points < 16:
            raise ReproError(
                "dictionary_points must be >= 16 for a usable surface")
        if self.num_frequencies < 1:
            raise ReproError("num_frequencies must be >= 1")
        if not self.deviations:
            raise ReproError("deviation grid is empty")
        if self.ambiguity_threshold < 0.0:
            raise ReproError("ambiguity_threshold must be >= 0")
        if self.n_workers < 0:
            raise ReproError("n_workers must be >= 0")
        if self.executor not in _EXECUTOR_KINDS:
            raise ReproError(
                f"executor must be one of {_EXECUTOR_KINDS}, "
                f"got {self.executor!r}")
        if self.ga_workers is not None and self.ga_workers < 0:
            raise ReproError("ga_workers must be >= 0 (or None to "
                             "inherit n_workers)")
        if self.ga_executor not in _EXECUTOR_KINDS:
            raise ReproError(
                f"ga_executor must be one of {_EXECUTOR_KINDS}, "
                f"got {self.ga_executor!r}")
        if self.engine not in ENGINE_KINDS:
            raise ReproError(
                f"engine must be one of {ENGINE_KINDS}, "
                f"got {self.engine!r}")

    @property
    def effective_ga_workers(self) -> int:
        """The GA pool size: ``ga_workers``, or ``n_workers`` when
        unset."""
        return self.n_workers if self.ga_workers is None \
            else self.ga_workers

    @classmethod
    def paper(cls) -> "PipelineConfig":
        """The configuration matching the paper's experiment."""
        return cls()

    @classmethod
    def quick(cls) -> "PipelineConfig":
        """Reduced budget for tests and examples."""
        return cls(dictionary_points=201, ga=GAConfig.quick())

    # ------------------------------------------------------------------
    # JSON round-trip (spawned cluster workers receive their config
    # over the command line; see repro.runtime.cli / cluster).
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """A JSON-ready dict that :meth:`from_json_dict` restores
        exactly (tuples ride as lists)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "PipelineConfig":
        """Rebuild a config from :meth:`to_json_dict` output (or any
        subset of its keys -- omitted fields keep their defaults)."""
        payload = dict(data)
        try:
            if isinstance(payload.get("ga"), dict):
                payload["ga"] = GAConfig(**payload["ga"])
            if "deviations" in payload:
                payload["deviations"] = tuple(payload["deviations"])
            return cls(**payload)
        except TypeError as exc:
            raise ReproError(f"bad pipeline-config dict: {exc}") from exc
