"""End-to-end pipeline configuration."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from ..errors import ReproError
from ..faults.models import paper_deviation_grid
from ..ga.config import GAConfig
from ..parallelism import ParallelismConfig, install_legacy_kwargs
from ..sim.engine import EngineSpec

__all__ = ["PipelineConfig"]

_FITNESS_KINDS = ("paper", "margin", "combined")

# The flat worker keys are both the deprecated constructor spelling and
# the stable JSON wire format (see to_json_dict).
_LEGACY_PARALLELISM_KEYS = (
    "n_workers", "executor", "ga_workers", "ga_executor")


@dataclass(frozen=True)
class PipelineConfig:
    """Everything the ATPG pipeline needs beyond the circuit itself.

    Defaults follow the paper: the +/-40 % / 10 %-step fault grid, a
    two-frequency test vector, dB signatures with the golden point at the
    origin, the 1/(1+I) fitness and the 128x15 roulette GA.

    Attributes
    ----------
    deviations:
        Dictionary fault grid (relative deviations, 0 excluded).
    dictionary_points:
        Dense AC grid size used for the dictionary / response surface.
    num_frequencies:
        Test-vector length (the paper uses 2).
    signature_scale / relative_to_golden:
        Signature mapping options (see SignatureMapper).
    fitness:
        ``"paper"`` = 1/(1+I); ``"margin"`` = separation margin;
        ``"combined"`` = paper + bounded margin tie-break.
    overlap_weight / margin_weight / margin_scale:
        Fitness shape parameters (see repro.ga.fitness).
    ga:
        The GA hyper-parameters (defaults to the paper's).
    ambiguity_threshold:
        Trajectory separation (signature units) below which two
        components are reported as one ambiguity group.
    parallelism:
        Worker-pool sizing for every parallel kernel
        (:class:`~repro.parallelism.ParallelismConfig`): dictionary
        builds, GA population scoring, and (when inherited by
        ``PosteriorConfig``) posterior Monte-Carlo sampling. The old
        flat keywords (``n_workers=``, ``executor=``, ``ga_workers=``,
        ``ga_executor=``) still work as deprecation shims that forward
        onto this object; the matching read-only properties remain
        stable API.
    engine:
        Simulation engine for every fault-simulation stage, as an
        :class:`~repro.sim.engine.EngineSpec` (a plain kind string such
        as ``"batched"`` or a compact spec such as
        ``"factored:cond_limit=1e6,sparse=true"`` are coerced).
        ``"batched"`` (default) is the stamp-once/solve-many
        :class:`~repro.sim.engine.BatchedMnaEngine`; ``"scalar"`` is
        the reference path; ``"factored"`` solves fault variants via
        Sherman-Morrison-Woodbury low-rank updates. Batched and scalar
        produce bitwise-identical responses; factored matches them
        within tight tolerance (~1e-12 relative on the benchmark
        circuits).
    """

    deviations: Tuple[float, ...] = field(
        default_factory=paper_deviation_grid)
    dictionary_points: int = 401
    num_frequencies: int = 2
    signature_scale: str = "db"
    relative_to_golden: bool = True
    fitness: str = "paper"
    overlap_weight: float = 1.0
    margin_weight: float = 0.45
    margin_scale: float = 1.0
    ga: GAConfig = field(default_factory=GAConfig.paper)
    ambiguity_threshold: float = 0.01
    parallelism: ParallelismConfig = field(
        default_factory=ParallelismConfig)
    engine: Union[EngineSpec, str] = "batched"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "parallelism", ParallelismConfig.coerce(self.parallelism))
        object.__setattr__(self, "engine", EngineSpec.coerce(self.engine))
        if self.fitness not in _FITNESS_KINDS:
            raise ReproError(
                f"fitness must be one of {_FITNESS_KINDS}, "
                f"got {self.fitness!r}")
        if self.dictionary_points < 16:
            raise ReproError(
                "dictionary_points must be >= 16 for a usable surface")
        if self.num_frequencies < 1:
            raise ReproError("num_frequencies must be >= 1")
        if not self.deviations:
            raise ReproError("deviation grid is empty")
        if self.ambiguity_threshold < 0.0:
            raise ReproError("ambiguity_threshold must be >= 0")

    # ------------------------------------------------------------------
    # Stable flat views of the parallelism object (read-only; the
    # deprecated *constructor* spellings warn, these accessors do not).
    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self.parallelism.n_workers

    @property
    def executor(self) -> str:
        return self.parallelism.executor

    @property
    def ga_workers(self) -> Optional[int]:
        return self.parallelism.ga_workers

    @property
    def ga_executor(self) -> str:
        return self.parallelism.ga_executor

    @property
    def effective_ga_workers(self) -> int:
        """The GA pool size: ``ga_workers``, or ``n_workers`` when
        unset."""
        return self.parallelism.effective_ga_workers

    @classmethod
    def paper(cls) -> "PipelineConfig":
        """The configuration matching the paper's experiment."""
        return cls()

    @classmethod
    def quick(cls) -> "PipelineConfig":
        """Reduced budget for tests and examples."""
        return cls(dictionary_points=201, ga=GAConfig.quick())

    # ------------------------------------------------------------------
    # JSON round-trip (spawned cluster workers receive their config
    # over the command line; see repro.runtime.cli / cluster).
    #
    # The wire format keeps the original flat worker keys and the
    # engine-as-string spelling, so configs persisted before the
    # ParallelismConfig/EngineSpec consolidation round-trip unchanged.
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """A JSON-ready dict that :meth:`from_json_dict` restores
        exactly (tuples ride as lists)."""
        out = dataclasses.asdict(self)
        out.update(out.pop("parallelism"))
        out["engine"] = self.engine.to_json_value()
        return out

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "PipelineConfig":
        """Rebuild a config from :meth:`to_json_dict` output (or any
        subset of its keys -- omitted fields keep their defaults).

        Accepts both the flat wire format (``n_workers``/``executor``/
        ``ga_workers``/``ga_executor`` keys, engine as a string) and
        the nested object forms, without deprecation warnings: the wire
        format is stable API, not a legacy spelling.
        """
        payload = dict(data)
        try:
            if isinstance(payload.get("ga"), dict):
                payload["ga"] = GAConfig(**payload["ga"])
            if "deviations" in payload:
                payload["deviations"] = tuple(payload["deviations"])
            flat = {key: payload.pop(key)
                    for key in _LEGACY_PARALLELISM_KEYS if key in payload}
            if flat:
                base = ParallelismConfig.coerce(payload.get("parallelism"))
                payload["parallelism"] = dataclasses.replace(base, **flat)
            return cls(**payload)
        except TypeError as exc:
            raise ReproError(f"bad pipeline-config dict: {exc}") from exc


install_legacy_kwargs(PipelineConfig, _LEGACY_PARALLELISM_KEYS)
