"""One parallelism knob surface for every fan-out kernel.

Historically each kernel grew its own worker-pool pair:
``PipelineConfig.n_workers``/``executor`` (dictionary builds),
``PipelineConfig.ga_workers``/``ga_executor`` (GA population scoring)
and ``PosteriorConfig.n_workers``/``executor`` (Monte-Carlo sample
blocks). :class:`ParallelismConfig` consolidates the sprawl into one
frozen value object that both top-level configs embed and all three
kernels consume.

The old keyword arguments keep working as deprecation shims (see
:func:`install_legacy_kwargs`): they warn with
:class:`~repro.errors.ReproDeprecationWarning` and forward onto the
embedded ``parallelism`` object, and the flat keys remain the JSON wire
format so existing persisted configs round-trip byte-identically.
"""

from __future__ import annotations

import dataclasses
import functools
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from .errors import ReproDeprecationWarning, ReproError

__all__ = ["ParallelismConfig", "EXECUTOR_KINDS"]

EXECUTOR_KINDS = ("process", "thread")


@dataclass(frozen=True)
class ParallelismConfig:
    """Worker-pool sizing for every parallel kernel.

    Attributes
    ----------
    n_workers:
        Pool size for parallel fault-dictionary builds and posterior
        Monte-Carlo sample blocks. 0 or 1 keep the serial paths.
    executor:
        Pool kind for those builds: ``"process"`` (zero-copy
        shared-memory hand-off, true multi-core; silently degrades to
        threads where shared memory is unavailable -- see
        ``repro.runtime.shm``) or ``"thread"``.
    ga_workers:
        GA population-scoring pool size; ``None`` inherits
        ``n_workers``.
    ga_executor:
        Pool kind for GA scoring. Defaults to ``"thread"`` (shared memo
        cache; wins only where BLAS drops the GIL) -- ``"process"``
        publishes the response surface into shared memory and scores
        shards across real cores, bitwise-identical either way.
    """

    n_workers: int = 0
    executor: str = "process"
    ga_workers: Optional[int] = None
    ga_executor: str = "thread"

    def __post_init__(self) -> None:
        if self.n_workers < 0:
            raise ReproError("n_workers must be >= 0")
        if self.executor not in EXECUTOR_KINDS:
            raise ReproError(
                f"executor must be one of {EXECUTOR_KINDS}, "
                f"got {self.executor!r}")
        if self.ga_workers is not None and self.ga_workers < 0:
            raise ReproError("ga_workers must be >= 0 (or None to "
                             "inherit n_workers)")
        if self.ga_executor not in EXECUTOR_KINDS:
            raise ReproError(
                f"ga_executor must be one of {EXECUTOR_KINDS}, "
                f"got {self.ga_executor!r}")

    @property
    def effective_ga_workers(self) -> int:
        """The GA pool size: ``ga_workers``, or ``n_workers`` when
        unset."""
        return self.n_workers if self.ga_workers is None \
            else self.ga_workers

    # ------------------------------------------------------------------
    # JSON (flat legacy keys are the wire format; see to_flat_dict)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]
                       ) -> "ParallelismConfig":
        try:
            return cls(**dict(data))
        except TypeError as exc:
            raise ReproError(
                f"bad parallelism-config dict: {exc}") from exc

    @classmethod
    def coerce(cls, value) -> "ParallelismConfig":
        """Accept a :class:`ParallelismConfig`, a dict, or ``None``."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls.from_json_dict(value)
        raise ReproError(
            "parallelism must be a ParallelismConfig or a dict, "
            f"got {type(value).__name__}")


def install_legacy_kwargs(cls, kwarg_names: Sequence[str],
                          field: str = "parallelism") -> None:
    """Wrap ``cls.__init__`` so deprecated flat worker kwargs forward.

    ``cls`` must be a (frozen) dataclass with a ``field`` slot holding a
    :class:`ParallelismConfig`. After installation,
    ``cls(n_workers=4)`` warns :class:`ReproDeprecationWarning` and
    behaves exactly like
    ``cls(parallelism=ParallelismConfig(n_workers=4))``; mixing both
    spellings applies the legacy keys on top of the given object.
    ``dataclasses.replace`` flows through the same shim, so existing
    ``replace(config, n_workers=...)`` call sites keep working too.
    """
    names: Tuple[str, ...] = tuple(kwarg_names)
    original_init = cls.__init__

    @functools.wraps(original_init)
    def __init__(self, *args, **kwargs):
        legacy = {name: kwargs.pop(name)
                  for name in names if name in kwargs}
        if legacy:
            warnings.warn(
                f"{cls.__name__}({', '.join(sorted(legacy))}=...) is "
                f"deprecated; pass "
                f"{field}=ParallelismConfig(...) instead",
                ReproDeprecationWarning, stacklevel=2)
            base = ParallelismConfig.coerce(kwargs.get(field))
            kwargs[field] = dataclasses.replace(base, **legacy)
        original_init(self, *args, **kwargs)

    cls.__init__ = __init__
