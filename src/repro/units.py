"""Engineering units, frequency grids and decibel helpers.

Analog test code constantly moves between SPICE-style engineering notation
(``4.7k``, ``15.9n``, ``1MEG``), plain floats, and log-spaced frequency
grids. This module centralises those conversions so that netlist parsing,
the circuit library and the benchmarks all agree on one format.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Sequence

import numpy as np

from .errors import ReproError

__all__ = [
    "parse_value",
    "format_value",
    "format_frequency",
    "log_frequency_grid",
    "decade_grid",
    "db",
    "db_to_linear",
    "TWO_PI",
]

TWO_PI = 2.0 * math.pi

# SPICE engineering suffixes. Order matters: "MEG" must be tried before "M"
# and case is significant only to disambiguate nothing -- SPICE is case
# insensitive, so "m" and "M" are both milli and mega must be spelled "MEG".
_SUFFIX_FACTORS = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "µ": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_VALUE_RE = re.compile(
    r"""^\s*
        (?P<number>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
        (?P<suffix>(?:meg|t|g|k|m|u|µ|n|p|f)?)
        (?P<unit>[a-zµΩω]*)
        \s*$""",
    re.IGNORECASE | re.VERBOSE,
)

# Scale factors used when *formatting* values back to engineering notation.
_FORMAT_STEPS = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "MEG"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
]


class UnitError(ReproError):
    """A value string could not be interpreted as an engineering quantity."""


def parse_value(text: str | float | int) -> float:
    """Parse a SPICE-style engineering value into a float.

    Accepts plain numbers (``"1500"``, ``1.5e3``), engineering suffixes
    (``"1.5k"``, ``"15.9n"``, ``"1MEG"``) and optional trailing unit letters
    (``"4.7kohm"``, ``"100nF"``). Numeric inputs pass straight through.

    >>> parse_value("4.7k")
    4700.0
    >>> parse_value("15.9nF")
    1.59e-08
    >>> parse_value(330)
    330.0
    """
    if isinstance(text, (int, float)):
        return float(text)
    if not isinstance(text, str):
        raise UnitError(f"cannot parse value of type {type(text).__name__}")
    match = _VALUE_RE.match(text)
    if match is None:
        raise UnitError(f"malformed engineering value: {text!r}")
    number = float(match.group("number"))
    suffix = match.group("suffix").lower()
    # Disambiguate: SPICE "MEG" is mega; bare "m"/"M" is milli.  The regex
    # already groups "meg" greedily, so a remaining single "m" is milli.
    factor = _SUFFIX_FACTORS.get(suffix, 1.0) if suffix else 1.0
    return number * factor


def format_value(value: float, unit: str = "", digits: int = 4) -> str:
    """Format a float in engineering notation (inverse of :func:`parse_value`).

    >>> format_value(4700.0)
    '4.7k'
    >>> format_value(1.59e-8, unit="F")
    '15.9nF'
    """
    if value == 0.0:
        return f"0{unit}"
    magnitude = abs(value)
    for factor, suffix in _FORMAT_STEPS:
        if magnitude >= factor:
            scaled = value / factor
            text = f"{scaled:.{digits}g}"
            return f"{text}{suffix}{unit}"
    # Below femto: fall back to scientific notation.
    return f"{value:.{digits}g}{unit}"


def format_frequency(freq_hz: float, digits: int = 4) -> str:
    """Format a frequency with an Hz unit. ``format_frequency(1e3) == '1kHz'``."""
    return format_value(freq_hz, unit="Hz", digits=digits)


def log_frequency_grid(f_start: float, f_stop: float,
                       points: int = 401) -> np.ndarray:
    """Logarithmically spaced frequency grid from ``f_start`` to ``f_stop``.

    Both endpoints are included. This is the grid used for fault-dictionary
    construction and for the response surface the GA interpolates on.
    """
    if f_start <= 0.0 or f_stop <= 0.0:
        raise UnitError("frequency grid endpoints must be positive")
    if f_stop <= f_start:
        raise UnitError(
            f"f_stop ({f_stop}) must exceed f_start ({f_start})")
    if points < 2:
        raise UnitError("a frequency grid needs at least 2 points")
    return np.logspace(math.log10(f_start), math.log10(f_stop), points)


def decade_grid(f_start: float, f_stop: float,
                points_per_decade: int = 20) -> np.ndarray:
    """SPICE ``.AC DEC``-style grid: fixed number of points per decade."""
    if points_per_decade < 1:
        raise UnitError("points_per_decade must be >= 1")
    decades = math.log10(f_stop / f_start)
    points = max(2, int(round(decades * points_per_decade)) + 1)
    return log_frequency_grid(f_start, f_stop, points)


def db(values: Iterable[float] | np.ndarray | complex | float,
       floor: float = 1e-30) -> np.ndarray | float:
    """Magnitude in decibels: ``20*log10(|x|)``, floored to avoid ``-inf``.

    Works on scalars (complex or real) and on numpy arrays.
    """
    magnitude = np.abs(np.asarray(values, dtype=complex))
    clipped = np.maximum(magnitude, floor)
    result = 20.0 * np.log10(clipped)
    if result.ndim == 0:
        return float(result)
    return result


def db_to_linear(values_db: Iterable[float] | float) -> np.ndarray | float:
    """Inverse of :func:`db` (magnitude only)."""
    result = np.power(10.0, np.asarray(values_db, dtype=float) / 20.0)
    if result.ndim == 0:
        return float(result)
    return result


def geometric_midpoint(f_low: float, f_high: float) -> float:
    """Geometric mean of two frequencies (midpoint on a log axis)."""
    if f_low <= 0 or f_high <= 0:
        raise UnitError("frequencies must be positive")
    return math.sqrt(f_low * f_high)


def octave_span(f_low: float, f_high: float) -> float:
    """Number of octaves between two frequencies."""
    if f_low <= 0 or f_high <= 0:
        raise UnitError("frequencies must be positive")
    return math.log2(f_high / f_low)


def nearest_index(grid: Sequence[float] | np.ndarray, value: float) -> int:
    """Index of the grid element nearest to ``value`` (log distance)."""
    arr = np.asarray(grid, dtype=float)
    if arr.size == 0:
        raise UnitError("cannot search an empty grid")
    if np.any(arr <= 0) or value <= 0:
        return int(np.argmin(np.abs(arr - value)))
    return int(np.argmin(np.abs(np.log10(arr) - math.log10(value))))
