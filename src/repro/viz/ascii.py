"""ASCII rendering of the paper's figures for terminal output.

The benchmarks regenerate the paper's figures as data (CSV) plus an ASCII
rendering so a reader can eyeball the *shape* without a plotting stack:
response families (Fig. 1), signature scatter (Fig. 2) and trajectory
plots with an unknown-fault marker (Fig. 3).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError

__all__ = ["line_plot", "scatter_plot", "trajectory_plot", "table"]

_SERIES_MARKS = "*+x#%@o&=~"


def _canvas(width: int, height: int) -> list:
    return [[" "] * width for _ in range(height)]


def _render(canvas: list, x_label: str, y_label: str, title: str,
            x_range: Tuple[float, float], y_range: Tuple[float, float],
            legend: Optional[str] = None) -> str:
    width = len(canvas[0])
    lines = []
    if title:
        lines.append(title)
    lines.append(f"  {y_range[1]:>10.3g} +" + "-" * width + "+")
    for row in canvas:
        lines.append(" " * 13 + "|" + "".join(row) + "|")
    lines.append(f"  {y_range[0]:>10.3g} +" + "-" * width + "+")
    left = f"{x_range[0]:.3g}"
    right = f"{x_range[1]:.3g}"
    padding = max(1, width - len(left) - len(right))
    lines.append(" " * 14 + left + " " * padding + right)
    lines.append(" " * 14 + f"[{x_label}]  vs  [{y_label}]")
    if legend:
        lines.append(legend)
    return "\n".join(lines)


def _scale(values: np.ndarray, low: float, high: float,
           size: int) -> np.ndarray:
    if high <= low:
        return np.zeros(values.shape, dtype=int)
    normalized = (values - low) / (high - low)
    return np.clip((normalized * (size - 1)).round().astype(int), 0,
                   size - 1)


def line_plot(x: np.ndarray, series: Dict[str, np.ndarray],
              width: int = 72, height: int = 20, log_x: bool = True,
              title: str = "", x_label: str = "f [Hz]",
              y_label: str = "dB") -> str:
    """Multi-series line plot; one marker character per series."""
    if not series:
        raise ReproError("line_plot needs at least one series")
    if len(series) > len(_SERIES_MARKS):
        raise ReproError(
            f"too many series ({len(series)}); max {len(_SERIES_MARKS)}")
    x = np.asarray(x, dtype=float)
    x_plot = np.log10(x) if log_x else x
    all_y = np.concatenate([np.asarray(y, dtype=float)
                            for y in series.values()])
    y_low, y_high = float(all_y.min()), float(all_y.max())
    if y_high == y_low:
        y_high = y_low + 1.0
    canvas = _canvas(width, height)
    for mark, (label, y) in zip(_SERIES_MARKS, series.items()):
        y = np.asarray(y, dtype=float)
        if y.shape != x.shape:
            raise ReproError(
                f"series {label!r} length {y.shape} != x {x.shape}")
        cols = _scale(x_plot, float(x_plot.min()), float(x_plot.max()),
                      width)
        rows = _scale(y, y_low, y_high, height)
        for col, row in zip(cols, rows):
            canvas[height - 1 - row][col] = mark
    legend = "  ".join(f"{mark}={label}" for mark, label in
                       zip(_SERIES_MARKS, series))
    return _render(canvas, x_label, y_label, title,
                   (float(x.min()), float(x.max())), (y_low, y_high),
                   legend)


def scatter_plot(points: Dict[str, np.ndarray], width: int = 64,
                 height: int = 24, title: str = "",
                 x_label: str = "axis f1", y_label: str = "axis f2",
                 extra: Optional[Dict[str, Tuple[float, float]]] = None
                 ) -> str:
    """Labelled point sets in the plane (+ single annotated markers).

    ``extra`` places one-character markers at named positions, e.g.
    ``{"O": (0, 0), "*": (x, y)}`` for the origin and the unknown fault.
    """
    if not points and not extra:
        raise ReproError("scatter_plot needs points")
    stacked = [np.atleast_2d(np.asarray(p, dtype=float))
               for p in points.values()]
    if extra:
        stacked.append(np.array(list(extra.values()), dtype=float))
    everything = np.vstack(stacked)
    if everything.shape[1] != 2:
        raise ReproError("scatter_plot works on 2-D points")
    x_low, x_high = float(everything[:, 0].min()), \
        float(everything[:, 0].max())
    y_low, y_high = float(everything[:, 1].min()), \
        float(everything[:, 1].max())
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0
    canvas = _canvas(width, height)
    for mark, (label, cloud) in zip(_SERIES_MARKS, points.items()):
        cloud = np.atleast_2d(np.asarray(cloud, dtype=float))
        cols = _scale(cloud[:, 0], x_low, x_high, width)
        rows = _scale(cloud[:, 1], y_low, y_high, height)
        for col, row in zip(cols, rows):
            canvas[height - 1 - row][col] = mark
    if extra:
        for mark, (x, y) in extra.items():
            col = int(_scale(np.array([x]), x_low, x_high, width)[0])
            row = int(_scale(np.array([y]), y_low, y_high, height)[0])
            canvas[height - 1 - row][col] = mark[0]
    legend = "  ".join(f"{mark}={label}" for mark, label in
                       zip(_SERIES_MARKS, points))
    if extra:
        legend += "  " + "  ".join(f"{m}=<marker>" for m in extra)
    return _render(canvas, x_label, y_label, title, (x_low, x_high),
                   (y_low, y_high), legend)


def trajectory_plot(trajectory_points: Dict[str, np.ndarray],
                    unknown: Optional[Tuple[float, float]] = None,
                    width: int = 64, height: int = 24,
                    title: str = "fault trajectories") -> str:
    """Fig.-3-style plot: trajectories + origin + optional unknown (*)."""
    extra: Dict[str, Tuple[float, float]] = {"O": (0.0, 0.0)}
    if unknown is not None:
        extra["?"] = (float(unknown[0]), float(unknown[1]))
    return scatter_plot(trajectory_points, width=width, height=height,
                        title=title, extra=extra)


def table(headers: Sequence[str], rows: Sequence[Sequence[object]],
          float_format: str = "{:.4g}") -> str:
    """Minimal fixed-width text table (benchmark report output)."""
    if not headers:
        raise ReproError("table needs headers")
    formatted = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        formatted.append(cells)
    widths = [len(h) for h in headers]
    for cells in formatted:
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    def line(cells):
        return " | ".join(cell.ljust(width)
                          for cell, width in zip(cells, widths))
    rule = "-+-".join("-" * width for width in widths)
    out = [line(headers), rule]
    out.extend(line(cells) for cells in formatted)
    return "\n".join(out)
