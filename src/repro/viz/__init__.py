"""Terminal figures (ASCII) and CSV data export."""

from .ascii import line_plot, scatter_plot, table, trajectory_plot
from .export import (
    confusion_csv,
    ga_history_csv,
    response_family_csv,
    trajectory_csv,
    write_csv,
)

__all__ = [
    "line_plot",
    "scatter_plot",
    "trajectory_plot",
    "table",
    "write_csv",
    "response_family_csv",
    "trajectory_csv",
    "ga_history_csv",
    "confusion_csv",
]
