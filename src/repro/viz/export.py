"""CSV export of figure/table data.

Every benchmark that regenerates a paper figure also writes the raw data
to CSV so the figure can be re-plotted with any external tool. Plain
``csv`` from the standard library; files land under the directory the
benchmark chooses (default ``benchmarks/out/``).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, Sequence

import numpy as np

from ..errors import ReproError
from ..ga.engine import GAResult
from ..sim.ac import FrequencyResponse
from ..trajectory.trajectory import TrajectorySet

__all__ = [
    "write_csv",
    "response_family_csv",
    "trajectory_csv",
    "ga_history_csv",
    "confusion_csv",
]


def write_csv(path: str | Path, headers: Sequence[str],
              rows: Iterable[Sequence[object]]) -> Path:
    """Write a generic CSV file, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
    return path


def response_family_csv(path: str | Path,
                        responses: Dict[str, FrequencyResponse]) -> Path:
    """Fig.-1-style data: one dB-magnitude column per labelled response."""
    if not responses:
        raise ReproError("response_family_csv needs responses")
    labels = list(responses)
    first = responses[labels[0]]
    for label in labels[1:]:
        if responses[label].freqs_hz.shape != first.freqs_hz.shape or \
                not np.allclose(responses[label].freqs_hz,
                                first.freqs_hz):
            raise ReproError(
                f"response {label!r} uses a different frequency grid")
    headers = ["freq_hz"] + [f"{label}_db" for label in labels]
    rows = []
    for index, freq in enumerate(first.freqs_hz):
        row = [f"{freq:.8g}"]
        row.extend(f"{responses[label].magnitude_db[index]:.6f}"
                   for label in labels)
        rows.append(row)
    return write_csv(path, headers, rows)


def trajectory_csv(path: str | Path,
                   trajectories: TrajectorySet) -> Path:
    """Fig.-3-style data: component, deviation, signature coordinates."""
    dimension = trajectories.dimension
    headers = ["component", "deviation"] + \
        [f"coord{i + 1}" for i in range(dimension)]
    rows = []
    for trajectory in trajectories:
        for deviation, point in zip(trajectory.deviations,
                                    trajectory.points):
            rows.append([trajectory.component, f"{deviation:+.3f}"] +
                        [f"{value:.8g}" for value in point])
    return write_csv(path, headers, rows)


def ga_history_csv(path: str | Path, result: GAResult) -> Path:
    """GA convergence data: per-generation best/mean/std fitness."""
    headers = ["generation", "best_fitness", "mean_fitness",
               "std_fitness", "best_freqs_hz"]
    rows = []
    for stats in result.history:
        freqs = ";".join(f"{f:.6g}" for f in stats.best_freqs_hz)
        rows.append([stats.generation, f"{stats.best_fitness:.6f}",
                     f"{stats.mean_fitness:.6f}",
                     f"{stats.std_fitness:.6f}", freqs])
    return write_csv(path, headers, rows)


def confusion_csv(path: str | Path,
                  confusion: Dict[tuple, int]) -> Path:
    """Diagnosis confusion counts: (true, predicted) -> count."""
    headers = ["true_component", "predicted_component", "count"]
    rows = [[true, predicted, count]
            for (true, predicted), count in sorted(confusion.items())]
    return write_csv(path, headers, rows)
